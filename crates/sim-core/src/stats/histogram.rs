//! Fixed-width histogram with percentile queries.

use core::fmt;

/// A histogram of `f64` observations with uniform bins over `[lo, hi)`,
/// plus explicit underflow/overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram covering `[lo, hi)` with `bins` uniform bins.
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram: lo ({lo}) must be < hi ({hi})");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The `[lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Approximate quantile `q` in [0, 1] by linear interpolation within the
    /// containing bin. Underflow mass maps to `lo`, overflow to `hi`.
    /// Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let (blo, bhi) = self.bin_range(i);
                let frac = (target - cum) / c as f64;
                return Some(blo + frac * (bhi - blo));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Median (quantile 0.5).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "histogram [{}, {}) n={} under={} over={}",
            self.lo, self.hi, self.count, self.underflow, self.overflow
        )?;
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (blo, bhi) = self.bin_range(i);
            let bar = "#".repeat((c * 40 / peak) as usize);
            writeln!(f, "  [{blo:>12.6}, {bhi:>12.6}) {c:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.999);
        h.record(10.0);
        h.record(42.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn bin_ranges() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn quantiles_uniform() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10_000.0);
        }
        let med = h.median().unwrap();
        assert!((med - 0.5).abs() < 0.02, "median={med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 0.99).abs() < 0.02, "p99={p99}");
    }

    #[test]
    fn quantile_empty() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_all_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(5.0);
        h.record(6.0);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn quantile_all_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-3.0);
        h.record(-0.1);
        // The entire mass sits below lo; every quantile maps to lo.
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(0.0));
    }

    #[test]
    fn quantile_endpoints() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        // q = 0 lands at the lower edge of the first occupied bin;
        // q = 1 at the upper edge of the last occupied one.
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantile_out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        // Out-of-range q clamps to [0, 1] — same answers as the ends.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NEG_INFINITY), h.quantile(0.0));
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
    }

    #[test]
    fn quantile_single_observation() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(5.5);
        // q = 0 saturates to lo (zero mass target); positive quantiles
        // interpolate inside the one occupied bin [5, 6).
        assert_eq!(h.quantile(0.0), Some(0.0));
        for q in [0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((5.0..=6.0).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_quantiles_monotone(
                xs in proptest::collection::vec(0.0f64..100.0, 1..500),
            ) {
                let mut h = Histogram::new(0.0, 100.0, 50);
                for &x in &xs {
                    h.record(x);
                }
                let mut last = f64::NEG_INFINITY;
                for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                    let v = h.quantile(q).unwrap();
                    prop_assert!(v >= last - 1e-9, "q={} fell: {} < {}", q, v, last);
                    last = v;
                }
            }

            #[test]
            fn prop_counts_conserved(
                xs in proptest::collection::vec(-50.0f64..150.0, 0..300),
            ) {
                let mut h = Histogram::new(0.0, 100.0, 10);
                for &x in &xs {
                    h.record(x);
                }
                let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
                prop_assert_eq!(
                    binned + h.underflow() + h.overflow(),
                    xs.len() as u64
                );
            }
        }
    }
}
