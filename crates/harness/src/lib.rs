#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # harness
//!
//! Discrete-event experiment harness for the LAMS-DLC reproduction.
//!
//! * [`node`] — one sans-IO driving contract ([`node::TxEndpoint`] /
//!   [`node::RxEndpoint`]) with adapters for LAMS-DLC, SR-HDLC and
//!   GBN-HDLC;
//! * [`link`] — the full-duplex channel: serialization, fixed or orbital
//!   propagation delay, uniform/burst error processes, outage injection;
//! * [`traffic`] — CBR / Poisson / on-off / batch generators;
//! * [`scenario`] — configuration and the generic run loop (common random
//!   numbers across protocols);
//! * [`metrics`] — per-run measurement collection and [`metrics::RunReport`];
//! * [`experiments`] — the E1–E12 suite regenerating every table and
//!   figure of the paper (see DESIGN.md for the index);
//! * [`report`] — plain-text table/series rendering.

pub mod duplex;
pub mod experiments;
pub mod link;
pub mod metrics;
pub mod node;
pub mod passes;
pub mod relay;
pub mod report;
pub mod scenario;
pub mod traffic;

pub use duplex::{run_duplex, run_duplex_lams, run_duplex_sr, DuplexReport};
pub use link::{Channel, DelayModel, ErrorModel, Fate, Outage};
pub use metrics::{Collector, RunReport};
pub use passes::{run_multi_pass, run_multi_pass_limited, MultiPassReport, PassSummary};
pub use relay::{run_relay, run_relay_lams, run_relay_sr, RelayConfig};
pub use scenario::{run, run_gbn, run_lams, run_sr, BurstCfg, ScenarioConfig};
pub use traffic::{Pattern, TrafficGen};
