//! Protocol state-machine micro-benchmarks: how many frames per second
//! each endpoint can process (relevant because the paper's links run at
//! 300 Mbps–1 Gbps: at 1 kB frames that is 36k–120k frames/s each way).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lams_dlc::{
    CheckPoint, ControlFrame, Frame, LamsConfig, PacketId, Receiver, Resequencer, RxStatus, Sender,
};
use sim_core::{Duration, Instant};
use std::hint::black_box;

const CYCLE: u64 = 256;

/// One LAMS sender cycle: push + transmit `CYCLE` frames, then process
/// the covering checkpoint.
fn lams_sender_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("lams_sender");
    g.throughput(Throughput::Elements(CYCLE));
    let payload = Bytes::from(vec![0u8; 1024]);
    g.bench_function("push_tx_ack_256", |b| {
        b.iter_batched(
            || {
                let mut s = Sender::new(LamsConfig::paper_default());
                s.start(Instant::ZERO);
                s
            },
            |mut s| {
                let mut now = Instant::ZERO;
                for i in 0..CYCLE {
                    s.push(PacketId(i), payload.clone()).unwrap();
                }
                for _ in 0..CYCLE {
                    if let Some(t) = s.poll_timeout() {
                        now = now.max(t);
                    }
                    black_box(s.poll_transmit(now));
                }
                let cp = Frame::Control(ControlFrame::CheckPoint(CheckPoint {
                    index: 1,
                    covered: CYCLE,
                    naks: vec![],
                    enforced: false,
                    probe: None,
                    stop_go: lams_dlc::StopGo::Go,
                }));
                s.handle_frame(now + Duration::from_millis(30), cp, RxStatus::Ok);
                while black_box(s.poll_event()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// One LAMS receiver cycle: accept `CYCLE` frames, emit a checkpoint,
/// drain deliveries.
fn lams_receiver_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("lams_receiver");
    g.throughput(Throughput::Elements(CYCLE));
    let payload = Bytes::from(vec![0u8; 1024]);
    g.bench_function("rx_deliver_cp_256", |b| {
        b.iter_batched(
            || {
                let mut r = Receiver::new(LamsConfig::paper_default());
                r.start(Instant::ZERO);
                r
            },
            |mut r| {
                let mut now = Instant::ZERO;
                for i in 1..=CYCLE {
                    now += Duration::from_micros(27);
                    r.handle_frame(
                        now,
                        Frame::Info(lams_dlc::InfoFrame {
                            seq: i,
                            packet_id: PacketId(i),
                            payload: payload.clone(),
                        }),
                        RxStatus::Ok,
                    );
                }
                r.on_timeout(now + Duration::from_millis(5));
                black_box(r.poll_transmit(now));
                let t = now + Duration::from_millis(10);
                while black_box(r.poll_deliver(t)).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn hdlc_sender_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdlc_sender");
    g.throughput(Throughput::Elements(CYCLE));
    let payload = Bytes::from(vec![0u8; 1024]);
    g.bench_function("push_tx_ack_256", |b| {
        b.iter_batched(
            || {
                let mut s = hdlc::SrSender::new(hdlc::HdlcConfig::paper_default());
                s.start(Instant::ZERO);
                s
            },
            |mut s| {
                let mut now = Instant::ZERO;
                for i in 0..CYCLE {
                    s.push(i, payload.clone());
                }
                for _ in 0..CYCLE {
                    if let Some(t) = s.poll_timeout() {
                        now = now.max(t);
                    }
                    black_box(s.poll_transmit(now));
                }
                s.handle_frame(
                    now + Duration::from_millis(30),
                    hdlc::HdlcFrame::Rr {
                        nr: CYCLE,
                        fin: true,
                    },
                    hdlc::RxStatus::Ok,
                );
                while black_box(s.poll_event()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let f = Frame::Info(lams_dlc::InfoFrame {
        seq: 12345,
        packet_id: PacketId(99),
        payload: Bytes::from(vec![0x5Au8; 1024]),
    });
    let m = 1 << 16;
    g.throughput(Throughput::Bytes(lams_dlc::wire::encoded_len(&f) as u64));
    g.bench_function("encode_info_1k", |b| {
        b.iter(|| lams_dlc::wire::encode(black_box(&f), m))
    });
    let bytes = lams_dlc::wire::encode(&f, m);
    g.bench_function("decode_info_1k", |b| {
        b.iter(|| lams_dlc::wire::decode(black_box(&bytes), 12345, m).unwrap())
    });
    g.finish();
}

fn resequencer(c: &mut Criterion) {
    let mut g = c.benchmark_group("resequencer");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("reorder_1k_stride", |b| {
        b.iter(|| {
            let mut r = Resequencer::new(0);
            // Worst-ish case: arrive in two interleaved halves.
            for i in (0..1024u64).step_by(2) {
                black_box(r.offer(PacketId(i), Bytes::new()));
            }
            for i in (1..1024u64).step_by(2) {
                black_box(r.offer(PacketId(i), Bytes::new()));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    lams_sender_cycle,
    lams_receiver_cycle,
    hdlc_sender_cycle,
    wire_codec,
    resequencer
);
criterion_main!(benches);
