//! Multi-pass bulk transfer: a dataset too large for one visibility
//! window, carried across successive passes of a satellite pair — the
//! paper's short-link-lifetime environment end to end.
//!
//! Run with: `cargo run --release --example multi_pass`

use harness::{run_multi_pass_limited, ScenarioConfig};
use orbit::Satellite;

fn main() {
    let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
    let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
    let mut base = ScenarioConfig::paper_default();
    base.rate_bps = 10e6; // a power-limited 10 Mbps terminal
    base.data_residual_ber = 1e-6;
    base.ctrl_residual_ber = 1e-7;

    // ~60 s of transmit time allowed per pass (thermal budget), 30 s of
    // retargeting per window, 4 orbits of horizon.
    let total = 120_000u64; // ~120 MB of 1 kB datagrams
    let horizon = 4.0 * a.period_s();
    let r = run_multi_pass_limited(&a, &b, total, &base, 30.0, horizon, Some(60.0));

    println!("transferring {total} x 1 kB datagrams over a 10 Mbps pass-limited link\n");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>11}",
        "pass", "start(s)", "usable(s)", "offered", "delivered", "exhausted"
    );
    for (k, p) in r.passes.iter().enumerate() {
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>10} {:>10} {:>11}",
            k + 1,
            p.start_s,
            p.usable_s,
            p.offered,
            p.delivered,
            if p.window_exhausted { "yes" } else { "no" },
        );
    }
    println!(
        "\ntotal delivered: {}/{} in {:.1} min (including inter-pass gaps); remaining {}",
        r.total_delivered,
        total,
        r.total_time_s / 60.0,
        r.remaining,
    );
    assert!(r.total_delivered > 0);
}
