//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmark-harness subset it uses: `Criterion`,
//! `benchmark_group` with `throughput`/`sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model, much simpler than real criterion: each benchmark
//! is warmed up briefly, then timed over `sample_size` samples of an
//! adaptively-chosen iteration count (~2 ms per sample). The median
//! per-iteration time is reported, with throughput when configured.
//! There is no statistical regression analysis and no HTML report —
//! the numbers are for relative comparison between runs on one machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup is cheap relative to the routine; one setup per iteration.
    SmallInput,
    /// Large inputs; also one setup per iteration in this shim.
    LargeInput,
    /// One setup per iteration (identical here, kept for API parity).
    PerIteration,
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compound id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; owns the timing loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly, recording per-sample wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample lasts ~2 ms.
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Time `routine` on fresh values from `setup`, excluding setup cost
    /// (setup runs outside the timed region; one input per call).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = {
            let input = setup();
            let mut slot = Some(input);
            calibrate(|| {
                if let Some(i) = slot.take() {
                    std::hint::black_box(routine(i));
                }
                slot = Some(setup());
            })
        };
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Pick an iteration count so one timed sample takes roughly 2 ms.
fn calibrate<F: FnMut()>(mut f: F) -> u64 {
    let target = Duration::from_millis(2);
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let took = start.elapsed();
        if took >= target || iters >= 1 << 20 {
            return iters.max(1);
        }
        // Grow geometrically toward the target, overshooting a little.
        let scale = (target.as_secs_f64() / took.as_secs_f64().max(1e-9)).min(64.0);
        iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion,
            |b| f(b),
        );
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion,
            |b| f(b, input),
        );
        self
    }

    /// End the group (kept for API parity; reporting happens per-bench).
    pub fn finish(&mut self) {}
}

fn run_bench<F>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &mut Criterion,
    mut f: F,
) where
    F: FnMut(&mut Bencher<'_>),
{
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_count: sample_size,
    };
    f(&mut bencher);
    samples.sort();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let lo = samples.first().copied().unwrap_or_default();
    let hi = samples.last().copied().unwrap_or_default();
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("{} elem/s", human_rate(per_sec(n))),
            Throughput::Bytes(n) => format!("{}B/s", human_rate(per_sec(n))),
        }
    });
    println!(
        "{name:<48} time: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.map(|r| format!("  thrpt: {r}")).unwrap_or_default()
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Benchmark driver; one per process, created by [`criterion_main!`].
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept `cargo bench` pass-through args: a bare positional arg
        // filters benchmark names; harness flags like --bench are ignored.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 60,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.into();
        run_bench(&name, 60, None, self, |b| f(b));
        self
    }

    /// Final reporting hook (per-bench output already printed).
    pub fn final_summary(&mut self) {}
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: 3,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: 2,
        };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }

    #[test]
    fn calibrate_returns_positive() {
        assert!(
            calibrate(|| {
                std::hint::black_box(1 + 1);
            }) >= 1
        );
    }
}
