//! LEO relay pass: two satellites in crossing planes, a finite visibility
//! window, time-varying range, and a bulk transfer squeezed into the
//! usable part of the pass — the scenario §1 of the paper motivates.
//!
//! Run with: `cargo run --release --example leo_relay`

use harness::{run_lams, run_sr, Pattern, ScenarioConfig};
use orbit::{visibility_windows, LinkConstraints, LinkProfile, Satellite};
use sim_core::Duration;

fn main() {
    // Two satellites at 1,000 km altitude, 80° inclination, planes 90°
    // apart — a cross-plane pair with genuinely finite link lifetimes.
    let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
    let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
    println!("orbital period: {:.1} min", a.period_s() / 60.0);

    let horizon = 2.0 * a.period_s();
    let windows = visibility_windows(&a, &b, horizon, 5.0, &LinkConstraints::default());
    println!("visibility windows over {:.0} min:", horizon / 60.0);
    for w in &windows {
        println!(
            "  [{:8.1}s .. {:8.1}s]  ({:.1} min)",
            w.start_s,
            w.end_s,
            w.duration_s() / 60.0
        );
    }
    let window = windows
        .iter()
        .copied()
        .max_by(|x, y| x.duration_s().total_cmp(&y.duration_s()))
        .expect("no visibility at all");

    // Profile the pass: range statistics drive the protocol timers
    // (t_out = R + α for HDLC; expected RTT for LAMS).
    let retarget_s = 30.0; // pointing + acquisition overhead (§1)
    let profile = LinkProfile::build(&a, &b, window, 5.0, retarget_s);
    println!("\nlink profile for the chosen window:");
    println!(
        "  range: {:.0}–{:.0} km (mean {:.0})",
        profile.range_min_km, profile.range_max_km, profile.range_mean_km
    );
    println!("  mean RTT: {:.2} ms", profile.mean_rtt_s() * 1e3);
    println!(
        "  α (timeout slack from range spread): {:.2} ms",
        profile.alpha_s() * 1e3
    );
    println!(
        "  usable after {retarget_s:.0}s retargeting: {:.1} min",
        profile.usable_s() / 60.0
    );

    // Bulk transfer across the pass under both protocols.
    let mut cfg = ScenarioConfig::paper_default();
    cfg.profile = Some((profile.clone(), retarget_s));
    // n = 2 in the paper's t_out = R_t + n·√var(R_t): the minimal α only
    // grazes the worst-case RTT and every response at maximum range
    // would time out spuriously.
    cfg.alpha = Duration::from_secs_f64(2.0 * profile.alpha_s());
    cfg.pattern = Pattern::Batch;
    cfg.n_packets = 50_000; // ~50 MB of 1 kB datagrams
    cfg.data_residual_ber = 1e-6;
    cfg.ctrl_residual_ber = 1e-7;
    cfg.deadline = Duration::from_secs_f64(profile.usable_s().min(120.0));

    println!(
        "\nbulk transfer of {} × 1 kB datagrams during the pass:",
        cfg.n_packets
    );
    for (name, report) in [("LAMS-DLC", run_lams(&cfg)), ("SR-HDLC", run_sr(&cfg))] {
        println!(
            "  {name:9}: {}/{} delivered in {:8.1} ms  (efficiency {:.3}, {} retx, lost {})",
            report.delivered_unique,
            report.offered,
            report.elapsed_s() * 1e3,
            report.efficiency(),
            report.retransmissions,
            report.lost,
        );
    }
}
