#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # proto-core
//!
//! Host-agnostic substrate for the LAMS-DLC reproduction's protocol
//! state machines. This crate sits at the bottom of the workspace's
//! dependency graph — it knows nothing about the simulator, telemetry
//! sinks, sockets, or threads — and provides exactly four things:
//!
//! * [`Instant`] / [`Duration`] — plain-integer nanosecond time, with no
//!   clock source attached (re-exported by `sim-core`, so simulator code
//!   keeps its historical import paths);
//! * [`Clock`] / [`ClockDomain`] — the pluggable time-source contract
//!   hosts implement: [`ManualClock`] for virtual (simulated, or
//!   test-faked) time, [`WallClock`] for monotonic real time;
//! * [`TraceEvent`] / [`ProtoTrace`] / [`Trace`] — the protocol event
//!   vocabulary and the pluggable sink contract hosts implement
//!   (`telemetry` bridges it onto its timestamped-record sinks);
//! * [`Machine`] / [`SenderMachine`] / [`ReceiverMachine`] — the sans-IO
//!   state-machine contract every ARQ engine implements, letting one
//!   generic driver run any protocol under the simulator, over real UDP
//!   sockets, or inside the adversarial model checker.
//!
//! The layering is enforced in CI: `cargo tree -i sim-core` and
//! `cargo tree -i telemetry` must never reach `proto-core`, `lams-dlc`
//! or `hdlc`.

pub mod clock;
pub mod machine;
pub mod time;
pub mod trace;

pub use clock::{Clock, ClockDomain, ManualClock, WallClock};
pub use machine::{Delivered, Machine, ReceiverMachine, RxStatus, SenderMachine, WireFrame};
pub use time::{Duration, Instant};
pub use trace::{ProtoTrace, SharedTrace, Trace, TraceEvent};
