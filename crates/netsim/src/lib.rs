#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # netsim
//!
//! Topology-generic discrete-event network simulation engine.
//!
//! One event loop drives an arbitrary directed-link topology of
//! protocol endpoints. The harness crate's point-to-point, full-duplex
//! and store-and-forward relay runners are all thin topology builders
//! over this engine, which guarantees they share *identical* event
//! scheduling, channel realisations and pump semantics:
//!
//! * [`endpoint`] — the sans-IO driving contract ([`TxEndpoint`] /
//!   [`RxEndpoint`]) the engine's event loop polls;
//! * [`driver`] — [`Driver`], the one generic adapter binding any
//!   [`proto_core::Machine`] to that contract (no per-protocol glue);
//! * [`channel`] — stochastic bit-error processes (i.i.d.
//!   [`channel::UniformBer`], continuous-time burst
//!   [`channel::GilbertElliott`]) — simulator-side substrate, moved out
//!   of `fec` so the codec crate stays host-agnostic;
//! * [`link`] — the directional channel model: serialization, fixed or
//!   orbital propagation delay, uniform/burst error processes, outages;
//! * [`traffic`] — CBR / Poisson / on-off / batch SDU generators;
//! * [`topology`] — nodes with [`NodeRole`]s, directed links, and the
//!   id types wiring endpoints to them;
//! * [`collect`] — the [`Collect`] measurement trait the engine feeds;
//! * [`engine`] — [`SimBuilder`] / [`Sim`]: the single generic event
//!   loop (push / arrive / sample / wake), common to every topology.
//!
//! Determinism: all randomness flows through per-stream
//! [`sim_core::SeedSplitter`] RNGs owned by channels and traffic
//! generators (common random numbers), and the event queue breaks
//! timestamp ties by insertion order — a run is a pure function of its
//! configuration and seed.

pub mod channel;
pub mod collect;
pub mod coordinator;
pub mod driver;
pub mod endpoint;
pub mod engine;
pub mod link;
pub mod shard;
pub mod topology;
pub mod traffic;

pub use channel::{ErrorProcess, GeState, GilbertElliott, Lossless, UniformBer};
pub use collect::Collect;
pub use coordinator::{run_sharded, ShardProfile, ShardedOutcome};
pub use driver::Driver;
pub use endpoint::{FrameMeta, RxEndpoint, TxEndpoint};
pub use engine::{Outcome, Sim, SimBuilder, SimEvent};
pub use link::{Channel, DelayModel, ErrorModel, Fate, Outage};
pub use proto_core::{Machine, ReceiverMachine, SenderMachine};
pub use shard::{
    CutLink, CutPlan, FinishedShard, Inbound, Partition, ShardBuilder, ShardEvent, ShardSim,
    WindowSummary,
};
pub use topology::{
    ColId, EndpointId, LinkId, LinkSpec, NodeId, NodeRole, RxId, Topology, TopologyError, TxId,
};
pub use traffic::{Pattern, TrafficGen};
