//! Worker-thread fan-out with deterministic, in-order merging.
//!
//! [`map`] runs one closure per item across a scoped worker pool and
//! returns the outputs in item order. Per-thread side channels — the
//! perf accumulator in [`crate::metrics`] and the telemetry global
//! sink — are captured inside each worker and replayed into the calling
//! thread **in item order** after the pool joins, so a parallel run's
//! merged perf block and trace stream are byte-identical to a serial
//! run's (modulo wall-clock seconds, which genuinely differ).
//!
//! Simulations themselves are pure functions of their configs and
//! seeds, so no coordination beyond work-stealing is needed: workers
//! claim items from an atomic cursor and never touch shared state.

use sim_core::QueueProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use telemetry::{BufferSink, TraceRecord};

/// Worker-pool width. 0 = not yet configured (auto), 1 = serial.
static WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Set the worker-pool width for subsequent [`map`] calls. `0` selects
/// the machine's available parallelism.
pub fn set_workers(n: usize) {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    WORKERS.store(n, Ordering::Relaxed);
}

/// The configured worker-pool width.
pub fn workers() -> usize {
    WORKERS.load(Ordering::Relaxed).max(1)
}

/// Shard count for experiment families that split one simulation across
/// threads (`repro --shards N`). Orthogonal to [`WORKERS`], which fans
/// out *across* experiments; shards parallelise *within* one run.
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Set the shard count for subsequent sharded runs. `0` selects the
/// machine's available parallelism (the CLI rejects 0 before calling
/// this; programmatic callers get auto).
pub fn set_shards(n: usize) {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    SHARDS.store(n, Ordering::Relaxed);
}

/// The configured shard count.
pub fn shards() -> usize {
    SHARDS.load(Ordering::Relaxed).max(1)
}

/// What one worker item hands back besides its output: the side
/// channels to replay on the orchestrating thread.
struct ItemResult<O> {
    out: O,
    perf: Option<(QueueProfile, f64, u64)>,
    shard: Option<crate::metrics::ShardAcc>,
    records: Vec<TraceRecord>,
}

/// Apply `f` to every item on a scoped worker pool, returning outputs
/// in item order. With one worker (or one item) the items run inline on
/// the calling thread — same side effects, no thread overhead.
///
/// `f` must be self-contained per item: simulations derive all
/// randomness from the item's seeds, and anything `Rc`-based (trace
/// sinks, collectors) must be constructed inside the call.
pub fn map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    // Self-profiling forces the fan-out inline: span wall-clock times
    // on concurrent workers would overlap, breaking the tree invariant
    // that children nest inside their parent (Σ children ≤ parent). A
    // profiled run keeps its *outer* parallelism — the experiment
    // runner installs each profiler inside the worker item, where this
    // thread-local check is false on the orchestrating thread.
    let prof = profile::current();
    let n_workers = if prof.enabled() {
        1
    } else {
        workers().min(items.len())
    };
    if n_workers <= 1 {
        let _span = prof.into_span("parallel.map");
        return items.into_iter().map(f).collect();
    }

    // When the caller has a trace sink installed, each worker item runs
    // under its own BufferSink; the buffered records are replayed into
    // the caller's sink in item order after the join.
    let forward_traces = telemetry::global_sink().is_some();

    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<ItemResult<O>>>> =
        (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                // Each worker starts with clean perf and shard
                // accumulators so the per-item delta is exactly that
                // item's runs.
                let _ = crate::metrics::perf_take();
                let _ = crate::metrics::shard_take();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(idx) else {
                        break;
                    };
                    let item = slot
                        .lock()
                        .expect("item slot")
                        .take()
                        .expect("item taken once");
                    let records = if forward_traces {
                        let sink = std::rc::Rc::new(std::cell::RefCell::new(BufferSink::new()));
                        telemetry::install_global(sink.clone());
                        let out = f(item);
                        telemetry::uninstall_global();
                        let records = sink.borrow_mut().take();
                        *results[idx].lock().expect("result slot") = Some(ItemResult {
                            out,
                            perf: crate::metrics::perf_take(),
                            shard: crate::metrics::shard_take(),
                            records,
                        });
                        continue;
                    } else {
                        Vec::new()
                    };
                    let out = f(item);
                    *results[idx].lock().expect("result slot") = Some(ItemResult {
                        out,
                        perf: crate::metrics::perf_take(),
                        shard: crate::metrics::shard_take(),
                        records,
                    });
                }
            });
        }
    });

    // Deterministic merge: replay each item's side channels in item
    // order, exactly as a serial run would have produced them.
    let _replay_span = profile::span("parallel.replay");
    let caller_sink = telemetry::global_sink();
    results
        .into_iter()
        .map(|slot| {
            let r = slot
                .into_inner()
                .expect("result mutex")
                .expect("every item produced a result");
            if let Some((profile, wall, runs)) = r.perf {
                crate::metrics::perf_merge(&profile, wall, runs);
            }
            if let Some(shard) = r.shard {
                crate::metrics::shard_merge(shard);
            }
            if let Some(sink) = &caller_sink {
                let mut sink = sink.borrow_mut();
                sink.record_all(&r.records);
            }
            r.out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Instant;
    use std::cell::RefCell;
    use std::rc::Rc;
    use telemetry::{RingSink, SharedSink, TraceEvent};

    fn with_workers<T>(n: usize, body: impl FnOnce() -> T) -> T {
        let prev = workers();
        set_workers(n);
        let out = body();
        set_workers(prev);
        out
    }

    #[test]
    fn outputs_keep_item_order() {
        let items: Vec<u64> = (0..50).collect();
        let serial = with_workers(1, || map(items.clone(), |i| i * i));
        let parallel = with_workers(4, || map(items, |i| i * i));
        assert_eq!(serial, parallel);
        assert_eq!(parallel[49], 49 * 49);
    }

    #[test]
    fn perf_accumulators_merge_across_workers() {
        let _ = crate::metrics::perf_take();
        let profile = QueueProfile {
            scheduled: 3,
            popped: 2,
            cancelled: 0,
            peak_depth: 1,
            compactions: 0,
            horizon: Instant::from_millis(1),
        };
        with_workers(3, || {
            map(vec![profile; 6], |p| {
                crate::metrics::perf_absorb(&p, 0.25);
            })
        });
        let (merged, wall, runs) = crate::metrics::perf_take().expect("perf merged");
        assert_eq!(merged.scheduled, 18);
        assert_eq!(merged.popped, 12);
        assert_eq!(runs, 6);
        assert!((wall - 1.5).abs() < 1e-9);
    }

    #[test]
    fn trace_records_replay_in_item_order() {
        let ring = Rc::new(RefCell::new(RingSink::new(64)));
        telemetry::install_global(ring.clone() as SharedSink);
        with_workers(4, || {
            map((0..10u64).collect(), |i| {
                telemetry::global_handle("worker").emit(Instant::from_nanos(i), || {
                    TraceEvent::Nak {
                        seq: i,
                        cp_index: 0,
                    }
                });
            })
        });
        telemetry::uninstall_global();
        let seqs: Vec<u64> = ring
            .borrow()
            .records()
            .map(|r| match r.event {
                TraceEvent::Nak { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            seqs,
            (0..10).collect::<Vec<_>>(),
            "item order, not completion order"
        );
    }

    #[test]
    fn registry_totals_identical_across_worker_counts() {
        use crate::scenario::{run_lams, ScenarioConfig};
        use std::collections::BTreeMap;

        // Three error-prone runs whose counter registries merge into one
        // total; every worker count must produce the same sums.
        let totals = |n: usize| -> BTreeMap<&'static str, f64> {
            with_workers(n, || {
                let reports = map(vec![1e-5f64; 3], |ber| {
                    let mut cfg = ScenarioConfig::paper_default();
                    cfg.n_packets = 150;
                    cfg.deadline = sim_core::Duration::from_secs(60);
                    cfg.data_residual_ber = ber;
                    run_lams(&cfg)
                });
                let mut merged = BTreeMap::new();
                for r in &reports {
                    for reg in [&r.tx_extras, &r.rx_extras, &r.counters] {
                        for &(name, value) in reg.entries() {
                            *merged.entry(name).or_insert(0.0) += value;
                        }
                    }
                }
                merged
            })
        };
        let serial = totals(1);
        assert!(!serial.is_empty());
        assert_eq!(serial, totals(3));
    }

    #[test]
    fn auto_width_resolves_to_at_least_one() {
        with_workers(1, || {
            set_workers(0);
            assert!(workers() >= 1);
        });
    }
}
