//! Link profiles: the timing parameters a DLC derives from orbital
//! geometry.
//!
//! §4 of the paper sets the HDLC timeout from the link's range statistics:
//! `t_out = R + α` where `R` is the mean round-trip time over the link
//! lifetime, `R = (R_min + R_max)/2`, and `α ≥ R_max − R` so the timeout
//! covers the worst-case range. High mobility makes `var(R_t)` large,
//! which is exactly the α-penalty LAMS-DLC avoids by not using timeouts on
//! the data path. [`LinkProfile`] computes these quantities for a
//! visibility window, plus the retargeting overhead that consumes the
//! start of every window (paper §1: "a large retargeting overhead which
//! occupies a significant portion of the link lifetime").

use crate::constants::propagation_delay_s;
use crate::orbit::Satellite;
use crate::visibility::Window;

/// Timing profile of one link over one visibility window.
#[derive(Clone, Debug)]
pub struct LinkProfile {
    /// The visibility window this profile covers.
    pub window: Window,
    /// Retargeting overhead at window start, seconds (pointing, acquisition,
    /// spatial tracking lock).
    pub retarget_s: f64,
    /// Minimum range over the usable window, km.
    pub range_min_km: f64,
    /// Maximum range over the usable window, km.
    pub range_max_km: f64,
    /// Time-averaged range, km.
    pub range_mean_km: f64,
    /// Variance of the range over the window, km².
    pub range_var_km2: f64,
    samples: Vec<(f64, f64)>, // (t_s, range_km)
}

impl LinkProfile {
    /// Build a profile by sampling the pair's range every `step_s` over the
    /// window. `retarget_s` is the acquisition overhead charged at the
    /// start.
    pub fn build(
        a: &Satellite,
        b: &Satellite,
        window: Window,
        step_s: f64,
        retarget_s: f64,
    ) -> Self {
        assert!(step_s > 0.0);
        assert!(retarget_s >= 0.0);
        let mut samples = Vec::new();
        let mut t = window.start_s;
        while t <= window.end_s {
            samples.push((t, a.range_to(b, t)));
            t += step_s;
        }
        if samples.last().is_none_or(|&(lt, _)| lt < window.end_s) {
            samples.push((window.end_s, a.range_to(b, window.end_s)));
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&(_, r)| r).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&(_, r)| (r - mean) * (r - mean))
            .sum::<f64>()
            / n;
        let min = samples
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        let max = samples.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
        LinkProfile {
            window,
            retarget_s,
            range_min_km: min,
            range_max_km: max,
            range_mean_km: mean,
            range_var_km2: var,
            samples,
        }
    }

    /// Usable data-transfer time: window length minus retargeting.
    pub fn usable_s(&self) -> f64 {
        (self.window.duration_s() - self.retarget_s).max(0.0)
    }

    /// Range at time `t_s` by linear interpolation of the samples; clamps
    /// to the window.
    pub fn range_at(&self, t_s: f64) -> f64 {
        let s = &self.samples;
        if t_s <= s[0].0 {
            return s[0].1;
        }
        if t_s >= s[s.len() - 1].0 {
            return s[s.len() - 1].1;
        }
        let idx = s.partition_point(|&(t, _)| t <= t_s);
        let (t0, r0) = s[idx - 1];
        let (t1, r1) = s[idx];
        let f = (t_s - t0) / (t1 - t0);
        r0 + f * (r1 - r0)
    }

    /// One-way propagation delay at time `t_s`, seconds.
    pub fn one_way_delay_s(&self, t_s: f64) -> f64 {
        propagation_delay_s(self.range_at(t_s))
    }

    /// The paper's mean round-trip estimate: `R = (R_min + R_max) / 2`
    /// expressed as a one-way mean range, converted to round-trip seconds.
    pub fn mean_rtt_s(&self) -> f64 {
        2.0 * propagation_delay_s(0.5 * (self.range_min_km + self.range_max_km))
    }

    /// The paper's timeout slack: `α ≥ R_max − R` (in round-trip seconds).
    /// Returns the minimal admissible α.
    pub fn alpha_s(&self) -> f64 {
        let r_mid = 0.5 * (self.range_min_km + self.range_max_km);
        2.0 * propagation_delay_s(self.range_max_km - r_mid)
    }

    /// The HDLC timeout `t_out = R + α` in seconds.
    pub fn t_out_s(&self) -> f64 {
        self.mean_rtt_s() + self.alpha_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{visibility_windows, LinkConstraints};

    fn profiled_pair() -> LinkProfile {
        let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
        let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
        let windows =
            visibility_windows(&a, &b, 2.0 * a.period_s(), 5.0, &LinkConstraints::default());
        assert!(!windows.is_empty());
        LinkProfile::build(&a, &b, windows[0], 5.0, 30.0)
    }

    #[test]
    fn profile_statistics_consistent() {
        let p = profiled_pair();
        assert!(p.range_min_km <= p.range_mean_km);
        assert!(p.range_mean_km <= p.range_max_km);
        assert!(p.range_var_km2 >= 0.0);
        assert!(p.range_max_km <= 10_000.0 + 1.0, "constraint violated");
    }

    #[test]
    fn usable_time_subtracts_retarget() {
        let p = profiled_pair();
        assert!((p.usable_s() - (p.window.duration_s() - 30.0)).abs() < 1e-9);
    }

    #[test]
    fn interpolation_matches_samples() {
        let p = profiled_pair();
        let t = p.window.start_s;
        assert!((p.range_at(t) - p.samples[0].1).abs() < 1e-9);
        // Midpoints lie between neighbours.
        let (t0, r0) = p.samples[0];
        let (t1, r1) = p.samples[1];
        let mid = p.range_at(0.5 * (t0 + t1));
        let (lo, hi) = if r0 < r1 { (r0, r1) } else { (r1, r0) };
        assert!(mid >= lo - 1e-9 && mid <= hi + 1e-9);
    }

    #[test]
    fn clamping_outside_window() {
        let p = profiled_pair();
        assert_eq!(p.range_at(p.window.start_s - 100.0), p.samples[0].1);
        assert_eq!(
            p.range_at(p.window.end_s + 100.0),
            p.samples[p.samples.len() - 1].1
        );
    }

    #[test]
    fn timeout_exceeds_worst_case_rtt() {
        // t_out = R + α must be at least the RTT at maximum range.
        let p = profiled_pair();
        let worst_rtt = 2.0 * propagation_delay_s(p.range_max_km);
        assert!(
            p.t_out_s() >= worst_rtt - 1e-12,
            "t_out={} worst={}",
            p.t_out_s(),
            worst_rtt
        );
    }

    #[test]
    fn alpha_grows_with_range_spread() {
        let p = profiled_pair();
        let spread = p.range_max_km - p.range_min_km;
        assert!(spread > 0.0);
        assert!((p.alpha_s() - propagation_delay_s(spread)).abs() < 1e-12);
    }

    #[test]
    fn delay_in_paper_band() {
        // §2.1: LEO propagation delays in the 10–100 ms band (round trip at
        // thousands of km).
        let p = profiled_pair();
        let d = p.one_way_delay_s(p.window.start_s + p.window.duration_s() / 2.0);
        assert!(d > 1e-3 && d < 50e-3, "delay {d}");
    }
}
