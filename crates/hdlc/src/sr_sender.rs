//! Selective-repeat HDLC sender.
//!
//! Implements the §4 analysis model of SR-HDLC faithfully:
//!
//! * a window of `W` I-frames; each I-frame keeps its sequence number
//!   across retransmissions (the in-sequence constraint demands it —
//!   §2.3: "each I-frame is identified with one number");
//! * **window-serial operation**: §4 models the transmission and
//!   retransmission periods as "repeated every time the window is
//!   exhausted" and `D_high = m·D_low(W)` — one window must *fully
//!   resolve* (every frame positively acknowledged) before the next
//!   opens. This is the property that makes `B_HDLC = ∞` at saturation;
//! * **transmission-period recovery** by SREJ: a SREJ retransmits exactly
//!   the rejected frame;
//! * **retransmission-period recovery** by timeout: if no RR arrives
//!   within `t_out = R + α`, every unacknowledged frame is resent;
//! * the last I-frame of a (re)transmission burst carries the **Poll**
//!   bit — the paper's "RR(p)" — demanding an immediate RR; at most one
//!   poll is outstanding at a time, the timeout re-arms it.

use crate::config::HdlcConfig;
use crate::frame::{HdlcFrame, RxStatus};
use bytes::Bytes;
use proto_core::Instant;
use proto_core::{Trace, TraceEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

#[derive(Clone, Debug)]
struct Out {
    packet_id: u64,
    payload: Bytes,
    first_sent: Instant,
}

/// Sender-side notifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrSenderEvent {
    /// A frame was cumulatively acknowledged by RR; `held_for_ns` spans
    /// from its *first* transmission (the paper's holding time).
    Released {
        /// End-to-end id of the released datagram.
        packet_id: u64,
        /// Its (stable) sequence number.
        ns: u64,
        /// Sender-buffer holding time in nanoseconds.
        held_for_ns: u64,
    },
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SrSenderStats {
    /// First transmissions.
    pub new_transmissions: u64,
    /// Retransmissions (SREJ- or timeout-triggered).
    pub retransmissions: u64,
    /// Timeout expirations (retransmission periods entered).
    pub timeouts: u64,
    /// Frames released by RR.
    pub released: u64,
    /// SREJ frames processed.
    pub srejs: u64,
    /// RR frames processed.
    pub rrs: u64,
    /// Corrupted supervisory frames dropped.
    pub rx_corrupted: u64,
}

/// The SR-HDLC sending endpoint (sans-IO, same driving contract as
/// `lams_dlc::Sender`).
pub struct SrSender {
    cfg: HdlcConfig,
    /// Oldest unacknowledged sequence number.
    base: u64,
    /// Next fresh sequence number.
    next: u64,
    /// New frames transmitted in the current window epoch; the next epoch
    /// opens only when the current one fully resolves (§4 window-serial
    /// model).
    epoch_sent: usize,
    /// A Poll is in flight and its RR has not yet arrived.
    poll_outstanding: bool,
    outstanding: BTreeMap<u64, Out>,
    queue: VecDeque<(u64, Bytes)>,
    /// Sequence numbers awaiting retransmission, ascending.
    retx: BTreeSet<u64>,
    timer: Option<Instant>,
    next_tx_allowed: Instant,
    events: VecDeque<SrSenderEvent>,
    stats: SrSenderStats,
    trace: Trace,
}

impl SrSender {
    /// Create a sender; call [`SrSender::start`] when the link is up.
    pub fn new(cfg: HdlcConfig) -> Self {
        cfg.validate().expect("invalid HdlcConfig");
        SrSender {
            cfg,
            base: 0,
            next: 0,
            epoch_sent: 0,
            poll_outstanding: false,
            outstanding: BTreeMap::new(),
            queue: VecDeque::new(),
            retx: BTreeSet::new(),
            timer: None,
            next_tx_allowed: Instant::ZERO,
            events: VecDeque::new(),
            stats: SrSenderStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// Mark the link active.
    pub fn start(&mut self, now: Instant) {
        self.next_tx_allowed = now;
    }

    /// Accept an SDU from the network layer. The queue is unbounded — the
    /// paper's point is precisely that it *grows without bound* at
    /// saturation (`B_HDLC = ∞`); [`SrSender::buffered`] exposes the
    /// occupancy the experiments plot.
    pub fn push(&mut self, packet_id: u64, payload: Bytes) {
        self.queue.push_back((packet_id, payload));
    }

    /// Counters.
    pub fn stats(&self) -> SrSenderStats {
        self.stats
    }

    /// Drain the next notification.
    pub fn poll_event(&mut self) -> Option<SrSenderEvent> {
        self.events.pop_front()
    }

    /// SDUs waiting for a window slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Frames in the window awaiting acknowledgement.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Total sending-buffer occupancy (queued + outstanding).
    pub fn buffered(&self) -> usize {
        self.queue.len() + self.outstanding.len()
    }

    /// The current epoch still accepts fresh frames.
    fn window_open(&self) -> bool {
        self.epoch_sent < self.cfg.window
    }

    fn has_transmittable(&self) -> bool {
        !self.retx.is_empty() || (!self.queue.is_empty() && self.window_open())
    }

    /// Earliest instant at which the sender has work.
    pub fn poll_timeout(&self) -> Option<Instant> {
        let mut t = self.timer;
        if self.has_transmittable() {
            t = Some(t.map_or(self.next_tx_allowed, |x| x.min(self.next_tx_allowed)));
        }
        t
    }

    /// Fire the retransmission timer if due: every unacknowledged frame
    /// re-enters the retransmission set (§4's retransmission period), and
    /// the stale poll is abandoned so the burst can re-poll.
    pub fn on_timeout(&mut self, now: Instant) {
        if let Some(t) = self.timer {
            if now >= t {
                self.stats.timeouts += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "timeout",
                    seq: self.base,
                });
                self.poll_outstanding = false;
                for &ns in self.outstanding.keys() {
                    self.retx.insert(ns);
                }
                self.timer = Some(now + self.cfg.t_out);
            }
        }
    }

    /// Produce the next outbound frame if the line is free.
    pub fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        if now < self.next_tx_allowed {
            return None;
        }
        // Retransmissions first (ascending sequence order).
        if let Some(&ns) = self.retx.iter().next() {
            self.retx.remove(&ns);
            let Some(out) = self.outstanding.get(&ns) else {
                // Acked while queued for retransmission; skip.
                return self.poll_transmit(now);
            };
            self.stats.retransmissions += 1;
            self.trace.emit(now, || TraceEvent::IFrameTx {
                seq: ns,
                retx: true,
                len: out.payload.len() as u64,
            });
            self.next_tx_allowed = now + self.cfg.t_f;
            self.timer = Some(now + self.cfg.t_out);
            let poll = !self.has_transmittable() && !self.poll_outstanding;
            self.poll_outstanding |= poll;
            return Some(HdlcFrame::Info {
                ns,
                packet_id: out.packet_id,
                poll,
                payload: out.payload.clone(),
            });
        }
        // New frames while the window is open.
        if self.window_open() {
            if let Some((packet_id, payload)) = self.queue.pop_front() {
                let ns = self.next;
                self.next += 1;
                self.epoch_sent += 1;
                self.outstanding.insert(
                    ns,
                    Out {
                        packet_id,
                        payload: payload.clone(),
                        first_sent: now,
                    },
                );
                self.stats.new_transmissions += 1;
                self.trace.emit(now, || TraceEvent::IFrameTx {
                    seq: ns,
                    retx: false,
                    len: payload.len() as u64,
                });
                self.next_tx_allowed = now + self.cfg.t_f;
                // The timeout clock runs from the most recent transmission
                // (it must never fire while the window is still being
                // serialised).
                self.timer = Some(now + self.cfg.t_out);
                // The paper's RR(p): the frame that exhausts the window
                // ALWAYS polls (the per-window response of §4); a burst
                // that ends early polls too, at most one poll in flight.
                let window_poll = self.epoch_sent == self.cfg.window;
                let tail_poll = !self.has_transmittable() && !self.poll_outstanding;
                let poll = window_poll || tail_poll;
                self.poll_outstanding |= poll;
                return Some(HdlcFrame::Info {
                    ns,
                    packet_id,
                    poll,
                    payload,
                });
            }
        }
        None
    }

    /// Inject a received supervisory frame.
    pub fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        if status != RxStatus::Ok {
            self.stats.rx_corrupted += 1;
            return;
        }
        match frame {
            HdlcFrame::Rr { nr, .. } => {
                self.stats.rrs += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "rr",
                    seq: nr,
                });
                self.poll_outstanding = false;
                // Cumulative acknowledgement below nr.
                let acked: Vec<u64> = self.outstanding.range(..nr).map(|(&s, _)| s).collect();
                for ns in acked {
                    let out = self.outstanding.remove(&ns).expect("present");
                    self.retx.remove(&ns);
                    self.stats.released += 1;
                    self.events.push_back(SrSenderEvent::Released {
                        packet_id: out.packet_id,
                        ns,
                        held_for_ns: now.duration_since(out.first_sent).as_nanos(),
                    });
                }
                self.base = self.base.max(nr);
                // RR is the window's positive acknowledgement: the next
                // window epoch opens only once this one fully resolved
                // (§4 window-serial model); the timer covers anything
                // still unresolved.
                if self.outstanding.is_empty() && self.retx.is_empty() {
                    self.timer = None;
                    self.epoch_sent = 0;
                } else {
                    self.timer = Some(now + self.cfg.t_out);
                }
            }
            HdlcFrame::Srej { nr } => {
                self.stats.srejs += 1;
                self.trace.emit(now, || TraceEvent::Control {
                    kind: "srej",
                    seq: nr,
                });
                if self.outstanding.contains_key(&nr) {
                    self.retx.insert(nr);
                }
            }
            // REJ belongs to the GBN variant; SR ignores it.
            HdlcFrame::Rej { .. } => {}
            HdlcFrame::Info { .. } => {}
        }
    }
}

impl proto_core::Machine for SrSender {
    type Frame = HdlcFrame;
    type Event = SrSenderEvent;

    fn start(&mut self, now: Instant) {
        SrSender::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: HdlcFrame, status: RxStatus) {
        SrSender::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<HdlcFrame> {
        SrSender::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        SrSender::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        SrSender::on_timeout(self, now);
    }

    fn poll_event(&mut self) -> Option<SrSenderEvent> {
        SrSender::poll_event(self)
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::SenderMachine for SrSender {
    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        SrSender::push(self, id, payload);
        true
    }

    fn buffered(&self) -> usize {
        SrSender::buffered(self)
    }

    fn transmissions(&self) -> u64 {
        let s = self.stats();
        s.new_transmissions + s.retransmissions
    }

    fn retransmissions(&self) -> u64 {
        self.stats().retransmissions
    }

    fn released_holding_ns(event: &SrSenderEvent) -> Option<u64> {
        let SrSenderEvent::Released { held_for_ns, .. } = event;
        Some(*held_for_ns)
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            ("hdlc.sr_sender.timeouts", s.timeouts as f64),
            ("hdlc.sr_sender.srejs_processed", s.srejs as f64),
            ("hdlc.sr_sender.rrs_processed", s.rrs as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proto_core::Duration;

    fn cfg() -> HdlcConfig {
        let mut c = HdlcConfig::paper_default();
        c.window = 4;
        c.seq_bits = 3; // M = 8, W = 4
        c
    }

    fn started() -> (SrSender, Instant) {
        let mut s = SrSender::new(cfg());
        s.start(Instant::ZERO);
        (s, Instant::ZERO)
    }

    fn drain(s: &mut SrSender, now: &mut Instant) -> Vec<HdlcFrame> {
        let mut out = Vec::new();
        loop {
            match s.poll_transmit(*now) {
                Some(f) => out.push(f),
                None => match s.poll_timeout() {
                    Some(t) if t > *now && s.has_transmittable() => *now = t,
                    _ => break,
                },
            }
        }
        out
    }

    fn seqs(frames: &[HdlcFrame]) -> Vec<(u64, bool)> {
        frames
            .iter()
            .map(|f| match f {
                HdlcFrame::Info { ns, poll, .. } => (*ns, *poll),
                other => panic!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn sends_window_then_stalls_with_poll_on_last() {
        let (mut s, mut now) = started();
        for i in 0..6 {
            s.push(i, Bytes::from_static(b"x"));
        }
        let frames = drain(&mut s, &mut now);
        // Window is 4: frames 0..=3 go out, 3 polls, 4 and 5 wait.
        assert_eq!(
            seqs(&frames),
            vec![(0, false), (1, false), (2, false), (3, true)]
        );
        assert_eq!(s.queued(), 2);
        assert_eq!(s.outstanding(), 4);
    }

    #[test]
    fn same_seq_reused_on_retransmission() {
        let (mut s, mut now) = started();
        s.push(7, Bytes::from_static(b"x"));
        let f = drain(&mut s, &mut now);
        assert_eq!(seqs(&f), vec![(0, true)]);
        // SREJ while the original poll is still outstanding: the
        // retransmission reuses the number but does not re-poll (the RR
        // answering the first poll is on its way).
        s.handle_frame(now, HdlcFrame::Srej { nr: 0 }, RxStatus::Ok);
        now += Duration::from_micros(100);
        let f = drain(&mut s, &mut now);
        assert_eq!(seqs(&f), vec![(0, false)], "HDLC must reuse the number");
        assert_eq!(s.stats().retransmissions, 1);
        // A prefix-only RR (nothing new acked) clears the poll; the
        // timeout then retransmits with a fresh poll — §4's
        // timeout-recovery retransmission period.
        s.handle_frame(now, HdlcFrame::Rr { nr: 0, fin: true }, RxStatus::Ok);
        let t = s.poll_timeout().expect("timer armed");
        s.on_timeout(t);
        let mut t2 = t;
        let f = drain(&mut s, &mut t2);
        assert_eq!(seqs(&f), vec![(0, true)], "timeout burst must re-poll");
    }

    #[test]
    fn rr_releases_cumulatively_and_opens_window() {
        let (mut s, mut now) = started();
        for i in 0..5 {
            s.push(i, Bytes::from_static(b"x"));
        }
        drain(&mut s, &mut now); // 0..=3 out
        now += Duration::from_millis(1);
        // A partial RR releases the prefix but the window epoch stays
        // closed until the whole window resolves (§4 window-serial model).
        s.handle_frame(now, HdlcFrame::Rr { nr: 3, fin: true }, RxStatus::Ok);
        assert_eq!(s.stats().released, 3);
        assert_eq!(s.outstanding(), 1);
        now += Duration::from_micros(100);
        assert!(s.poll_transmit(now).is_none(), "epoch must stay closed");
        // Full resolution opens the next epoch: frame 4 flows.
        s.handle_frame(now, HdlcFrame::Rr { nr: 4, fin: true }, RxStatus::Ok);
        let f = drain(&mut s, &mut now);
        assert_eq!(seqs(&f), vec![(4, true)]);
        let held: Vec<u64> = std::iter::from_fn(|| s.poll_event())
            .map(|SrSenderEvent::Released { ns, .. }| ns)
            .collect();
        assert_eq!(held, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_retransmits_all_unacked() {
        let (mut s, mut now) = started();
        for i in 0..3 {
            s.push(i, Bytes::from_static(b"x"));
        }
        drain(&mut s, &mut now);
        let t = s.poll_timeout().unwrap();
        s.on_timeout(t);
        assert_eq!(s.stats().timeouts, 1);
        let mut t2 = t;
        let f = drain(&mut s, &mut t2);
        assert_eq!(seqs(&f), vec![(0, false), (1, false), (2, true)]);
        assert_eq!(s.stats().retransmissions, 3);
    }

    #[test]
    fn srej_for_acked_frame_ignored() {
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        s.handle_frame(now, HdlcFrame::Rr { nr: 1, fin: true }, RxStatus::Ok);
        s.handle_frame(now, HdlcFrame::Srej { nr: 0 }, RxStatus::Ok);
        now += Duration::from_millis(1);
        assert!(s.poll_transmit(now).is_none());
        assert_eq!(s.stats().retransmissions, 0);
    }

    #[test]
    fn corrupted_supervisory_dropped() {
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        s.handle_frame(
            now,
            HdlcFrame::Rr { nr: 1, fin: true },
            RxStatus::PayloadCorrupted,
        );
        assert_eq!(s.outstanding(), 1, "corrupted RR must not ack");
        assert_eq!(s.stats().rx_corrupted, 1);
    }

    #[test]
    fn timer_cleared_when_all_acked() {
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        assert!(s.poll_timeout().is_some());
        s.handle_frame(now, HdlcFrame::Rr { nr: 1, fin: true }, RxStatus::Ok);
        assert_eq!(s.poll_timeout(), None);
    }

    #[test]
    fn rr_lost_then_timeout_recovers() {
        // The paper's P_R analysis: a lost RR forces a full retransmission
        // period even though all frames arrived.
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        // RR never arrives; timer fires.
        let t = s.poll_timeout().unwrap();
        s.on_timeout(t);
        let mut t2 = t;
        let f = drain(&mut s, &mut t2);
        assert_eq!(seqs(&f), vec![(0, true)]);
    }

    #[test]
    fn srej_during_retx_queue_dedupes() {
        // Two SREJs for the same frame (receiver witnessed two corrupted
        // copies) collapse into one queued retransmission at a time.
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        s.handle_frame(now, HdlcFrame::Srej { nr: 0 }, RxStatus::Ok);
        s.handle_frame(now, HdlcFrame::Srej { nr: 0 }, RxStatus::Ok);
        now += Duration::from_micros(100);
        let f = drain(&mut s, &mut now);
        assert_eq!(f.len(), 1, "duplicate SREJ must not double-send: {f:?}");
    }

    #[test]
    fn rr_beyond_next_is_harmless() {
        // A (corrupt-free but semantically stale) RR past everything sent
        // must not panic or corrupt the window.
        let (mut s, mut now) = started();
        s.push(0, Bytes::from_static(b"x"));
        drain(&mut s, &mut now);
        s.handle_frame(
            now,
            HdlcFrame::Rr {
                nr: 1000,
                fin: true,
            },
            RxStatus::Ok,
        );
        assert_eq!(s.outstanding(), 0);
        s.push(1, Bytes::from_static(b"y"));
        now += Duration::from_millis(1);
        assert!(s.poll_transmit(now).is_some(), "sender must keep working");
    }

    #[test]
    fn pacing_respects_t_f() {
        let (mut s, now) = started();
        s.push(0, Bytes::new());
        s.push(1, Bytes::new());
        assert!(s.poll_transmit(now).is_some());
        assert!(s.poll_transmit(now).is_none());
        assert!(s.poll_transmit(now + cfg().t_f).is_some());
    }
}

// ------------------------------------------------------------ sans-IO host contract
