#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # lams-dlc
//!
//! A from-scratch implementation of **LAMS-DLC**, the data-link control
//! protocol of Ward & Choi, *The LAMS-DLC ARQ Protocol* (Auburn CSE-91-03,
//! 1991): a NAK-based ARQ tailored to low-altitude multiple-satellite
//! (LAMS) laser links — long propagation delay, high residual error rates,
//! very high bandwidth, and short link lifetimes.
//!
//! ## Protocol in one paragraph
//!
//! The receiver emits a **Check-Point command** every `W_cp`; each carries
//! the sequence numbers of frames found erroneous during the last
//! `C_depth` intervals (**cumulative NAK**) plus a coverage horizon that
//! implicitly *positively* acknowledges everything else, releasing sender
//! buffer space. Retransmissions take **fresh sequence numbers** (legal
//! because in-sequence delivery is relaxed; the destination
//! [`Resequencer`] restores order and drops duplicates), which bounds the
//! numbering size by the **resolving period** `R + W_cp/2 + C_depth·W_cp`
//! and lets the receiver detect losses by sequence gaps. If checkpoints
//! stop arriving for `C_depth·W_cp` the sender probes with a
//! **Request-NAK** (enforced recovery); no **Enforced-NAK** within the
//! failure window ⇒ the link is declared failed. A **Stop-Go** bit in
//! every checkpoint drives sender-side rate control.
//!
//! ## Crate layout
//!
//! * [`config::LamsConfig`] — parameters and the derived bounds
//!   (resolving period, numbering size, timers);
//! * [`frame`] / [`wire`] — frame types and the byte-level format;
//! * [`seq`] — bounded sequence-number compression/expansion;
//! * [`sender::Sender`] / [`receiver::Receiver`] — the two sans-IO state
//!   machines;
//! * [`flow::RateController`] — Stop-Go rate control;
//! * [`resequencer::Resequencer`] — destination-side ordering/dedup;
//! * [`events`] — notifications surfaced to the layer above.
//!
//! ## Example
//!
//! ```
//! use lams_dlc::{LamsConfig, Sender, Receiver, PacketId, RxStatus};
//! use bytes::Bytes;
//! use proto_core::Instant;
//!
//! let cfg = LamsConfig::paper_default();
//! let mut tx = Sender::new(cfg.clone());
//! let mut rx = Receiver::new(cfg.clone());
//! let now = Instant::ZERO;
//! tx.start(now);
//! rx.start(now);
//!
//! tx.push(PacketId(0), Bytes::from_static(b"hello")).unwrap();
//! let frame = tx.poll_transmit(now).unwrap();
//! // (a real run puts the frame through a channel model)
//! rx.handle_frame(now + cfg.expected_rtt / 2, frame, RxStatus::Ok);
//! let d = rx.poll_deliver(now + cfg.expected_rtt).unwrap();
//! assert_eq!(d.packet_id, PacketId(0));
//! ```

pub mod config;
pub mod dedup;
pub mod events;
pub mod flow;
pub mod frame;
pub mod receiver;
pub mod resequencer;
pub mod sender;
pub mod seq;
pub mod wire;

pub use config::{FlowConfig, LamsConfig};
pub use dedup::DedupWindow;
pub use events::{ReceiverEvent, SenderEvent};
pub use flow::RateController;
pub use frame::{CheckPoint, ControlFrame, Frame, InfoFrame, PacketId, RxStatus, StopGo};
pub use receiver::{Delivery, Receiver, ReceiverStats};
pub use resequencer::{Resequencer, ResequencerStats};
pub use sender::{QueueFull, Sender, SenderState, SenderStats};
