//! Property-based invariants over randomised small scenarios: whatever
//! the (valid) parameters, LAMS-DLC must deliver everything exactly once
//! in order, deterministically.

use harness::{run_lams, ScenarioConfig};
use proptest::prelude::*;
use sim_core::Duration;

fn scenario(
    seed: u64,
    n: u64,
    ber_exp: f64,
    ctrl_exp: f64,
    w_cp_ms: u64,
    c_depth: u32,
    distance_km: f64,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.seed = seed;
    cfg.n_packets = n;
    cfg.data_residual_ber = 10f64.powf(ber_exp);
    cfg.ctrl_residual_ber = 10f64.powf(ctrl_exp);
    cfg.w_cp = Duration::from_millis(w_cp_ms);
    cfg.c_depth = c_depth;
    cfg.distance_km = distance_km;
    cfg.deadline = Duration::from_secs(120);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_zero_loss_exactly_once_in_order(
        seed in 1u64..10_000,
        n in 100u64..800,
        ber_exp in -8.0f64..-4.5,
        ctrl_exp in -9.0f64..-5.0,
        w_cp_ms in 1u64..12,
        c_depth in 2u32..6,
        distance_km in 2_000.0f64..10_000.0,
    ) {
        let cfg = scenario(seed, n, ber_exp, ctrl_exp, w_cp_ms, c_depth, distance_km);
        let r = run_lams(&cfg);
        prop_assert_eq!(r.lost, 0, "lost frames");
        prop_assert_eq!(r.delivered_unique, n, "incomplete delivery");
        prop_assert_eq!(r.duplicates, 0, "duplicates without outages");
        prop_assert!(!r.link_failed, "spurious link failure");
        prop_assert!(!r.deadline_hit, "did not converge");
    }

    #[test]
    fn prop_deterministic_replay(
        seed in 1u64..10_000,
        n in 100u64..400,
        ber_exp in -7.0f64..-4.5,
    ) {
        let cfg = scenario(seed, n, ber_exp, ber_exp - 1.0, 5, 3, 4_000.0);
        let a = run_lams(&cfg);
        let b = run_lams(&cfg);
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.transmissions, b.transmissions);
        prop_assert_eq!(a.retransmissions, b.retransmissions);
        prop_assert_eq!(a.duplicates, b.duplicates);
    }

    #[test]
    fn prop_holding_below_resolving_bound(
        seed in 1u64..10_000,
        ber_exp in -7.0f64..-4.5,
        w_cp_ms in 1u64..12,
        c_depth in 2u32..6,
    ) {
        let cfg = scenario(seed, 500, ber_exp, ber_exp - 1.0, w_cp_ms, c_depth, 4_000.0);
        let bound = cfg.lams_config().resolving_period().as_secs_f64();
        let r = run_lams(&cfg);
        if let Some(max_h) = r.holding.max() {
            prop_assert!(
                max_h <= bound * 1.05,
                "holding {} exceeds resolving period {}",
                max_h,
                bound
            );
        }
    }

    #[test]
    fn prop_efficiency_sane(
        seed in 1u64..10_000,
        n in 500u64..2_000,
        ber_exp in -8.0f64..-5.0,
    ) {
        let cfg = scenario(seed, n, ber_exp, ber_exp - 1.0, 5, 3, 4_000.0);
        let r = run_lams(&cfg);
        let e = r.efficiency();
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-9, "efficiency {}", e);
    }
}
