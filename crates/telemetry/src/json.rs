//! Minimal JSON value model: construction, rendering, parsing.
//!
//! Numbers are `f64`, except that non-negative integers too large for
//! `f64` to hold exactly travel as [`Json::Int`] — wall-clock traces
//! carry nanosecond counts past 2^53, and those must survive a
//! render/parse round trip bit-for-bit. Non-finite values render as
//! `null` (JSON has no NaN/Infinity). Object member order is preserved
//! — reports render in the order fields were inserted, which keeps
//! diffs stable.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered as an integer when exactly integral.
    Num(f64),
    /// A non-negative integer preserved exactly beyond `f64`'s 2^53
    /// mantissa range; always rendered as plain digits. Numerically
    /// equal `Int` and `Num` values compare equal.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved member order.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            // Cross-representation: equal when the f64 side is exactly
            // this integer (a parser may hand back either form).
            (Json::Int(a), Json::Num(b)) | (Json::Num(b), Json::Int(a)) => {
                *b >= 0.0 && b.fract() == 0.0 && *a as f64 == *b
            }
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number. `Int` values round to the
    /// nearest `f64`; use [`Json::as_u64`] when exactness matters.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Exact unsigned-integer value, if this is a number holding one.
    /// `Num` qualifies when non-negative, integral, and in `u64` range
    /// (an integral `f64` in range converts exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Append the compact rendering of this value to `out` — the
    /// allocation-free form of [`Json::render`] for callers that reuse
    /// one buffer across many renderings.
    pub fn render_into(&self, out: &mut String) {
        self.write(out, None, 0);
    }

    /// Render as indented JSON text (2 spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Int(n) => write_u64(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, members.len(), '{', '}', |out, i, d| {
                    write_str(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

pub(crate) fn write_num(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

pub(crate) fn write_u64(out: &mut String, n: u64) {
    use fmt::Write;
    let _ = write!(out, "{n}");
}

pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Stay in the f64 world whenever it is exact (every value the
        // simulator produces), so renderings are unchanged; switch to
        // `Int` only where f64 would silently round.
        if (n as f64) as u128 == n as u128 {
            Json::Num(n as f64)
        } else {
            Json::Int(n)
        }
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(a: Vec<Json>) -> Json {
        Json::Arr(a)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map(Into::into).unwrap_or(Json::Null)
    }
}

/// A parse failure, with byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parse JSON text. Accepts exactly one top-level value.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept, combine when valid.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Plain non-negative integer literals that f64 cannot hold
        // exactly stay exact as `Int`; everything else (all existing
        // traces) keeps the f64 representation.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                if (n as f64) as u128 != n as u128 {
                    return Ok(Json::Int(n));
                }
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            at: start,
            reason: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), r#""a\"b\n""#);
    }

    #[test]
    fn renders_compound() {
        let v = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
            ("s", Json::from("hi")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"s":"hi"}"#);
    }

    #[test]
    fn parse_round_trips() {
        let v = Json::obj(vec![
            ("n", Json::Num(-1.5e3)),
            ("flag", Json::Bool(false)),
            ("nested", Json::obj(vec![("empty", Json::Arr(vec![]))])),
            ("text", Json::from("tab\there \u{1f680} ok")),
        ]);
        for rendered in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(Json::parse(r#""A\né""#).unwrap(), Json::Str("A\né".into()));
        assert_eq!(
            Json::parse(r#""🚀""#).unwrap(),
            Json::Str("\u{1f680}".into())
        );
    }

    #[test]
    fn big_integers_survive_exactly() {
        // 2^53 + 1 is the first integer f64 cannot represent.
        let n = (1u64 << 53) + 1;
        let v = Json::from(n);
        assert_eq!(v, Json::Int(n));
        assert_eq!(v.render(), "9007199254740993");
        assert_eq!(Json::parse("9007199254740993").unwrap().as_u64(), Some(n));
        // Small integers keep the historical f64 path and rendering.
        assert_eq!(Json::from(17u64), Json::Num(17.0));
        assert_eq!(Json::parse("17").unwrap(), Json::Num(17.0));
        assert_eq!(Json::parse("17").unwrap().as_u64(), Some(17));
        // Cross-representation equality: same value, either form.
        assert_eq!(Json::Int(17), Json::Num(17.0));
        assert_ne!(Json::Int(17), Json::Num(17.5));
        // Non-integers and negatives have no exact u64 reading.
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Json::obj(vec![("k", Json::from(2u64))]);
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("missing"), None);
    }
}
