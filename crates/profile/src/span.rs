//! Span profiler internals: the per-thread [`Profiler`], the [`Prof`]
//! handle hot code holds, the RAII [`SpanGuard`], and the [`SpanTree`]
//! snapshot reports are built from.
//!
//! # Accounting model
//!
//! Spans are identified by *call path*, not by name alone: entering
//! `"queue.pop"` under `"sim.dispatch"` and under `"sim.wake"` produces
//! two distinct tree nodes, so a flamegraph falls straight out of the
//! tree. Each node accumulates a call count and total wall-clock
//! nanoseconds; a frame's elapsed time is measured once at exit with
//! the same monotonic clock that stamped its entry. Because child
//! frames are strictly nested inside their parent frame (guards close
//! in LIFO order; an out-of-order parent drop force-closes its children
//! at the parent's exit instant), `Σ children.total ≤ parent.total`
//! holds exactly in integer nanoseconds and self time is
//! `total − Σ children` with no rounding.
//!
//! # Capacity
//!
//! The node table is capped ([`DEFAULT_SPAN_CAP`] by default). Once
//! full, new call paths are not recorded: the enter is counted in
//! `truncated` (a node allocation failed) and `dropped` (the timing
//! went unattributed — it folds into the parent's self time), and any
//! spans opened underneath inherit the dropped state. The counters make
//! a capped table visible instead of silently wrong, mirroring
//! `monitor.attribution.incomplete`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Default span-table capacity (distinct call paths per profiler).
/// The instrumented workspace uses well under a hundred paths; the cap
/// exists so a pathological caller cannot grow the table unboundedly.
pub const DEFAULT_SPAN_CAP: usize = 512;

/// Root sentinel index: node 0 anchors the tree and carries no timing.
const ROOT: u32 = 0;
/// Frame marker for spans that lost attribution (table full, or opened
/// under an already-dropped frame).
const DROPPED: u32 = u32::MAX;

/// A constant-space summary of a sampled series (queue depths): count,
/// sum, and max, from which the mean is derived on demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all sampled values.
    pub sum: u64,
    /// Largest sampled value.
    pub max: u64,
}

impl SampleSummary {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another summary into this one.
    pub fn absorb(&mut self, other: &SampleSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[derive(Clone, Copy)]
struct Frame {
    node: u32,
    start_ns: u64,
}

struct NodeData {
    name: &'static str,
    count: u64,
    total_ns: u64,
    children: Vec<u32>,
}

impl NodeData {
    fn new(name: &'static str) -> Self {
        NodeData {
            name,
            count: 0,
            total_ns: 0,
            children: Vec::new(),
        }
    }
}

/// The per-thread span accumulator. Not used directly by instrumented
/// code — obtain a [`Prof`] handle via [`crate::current`] and open
/// spans through it.
pub struct Profiler {
    epoch: Instant,
    nodes: Vec<NodeData>,
    stack: Vec<Frame>,
    cap: usize,
    dropped: u64,
    truncated: u64,
    queue_depth: SampleSummary,
    /// Trees absorbed from other threads' reports (shard workers),
    /// merged into the final tree at finish.
    foreign: SpanTree,
}

impl Profiler {
    /// A fresh profiler whose span table holds at most `cap` nodes
    /// (including the root sentinel; `cap` is clamped to at least 2 so
    /// one real span always fits).
    pub fn new(cap: usize) -> Self {
        Profiler {
            epoch: Instant::now(),
            nodes: vec![NodeData::new("")],
            stack: Vec::with_capacity(16),
            cap: cap.max(2),
            dropped: 0,
            truncated: 0,
            queue_depth: SampleSummary::default(),
            foreign: SpanTree::default(),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Find or create `name` under `parent`; `None` when the table is
    /// at capacity and the path does not already exist.
    fn child(&mut self, parent: u32, name: &'static str) -> Option<u32> {
        let n = self.nodes[parent as usize].children.len();
        for k in 0..n {
            let c = self.nodes[parent as usize].children[k];
            if self.nodes[c as usize].name == name {
                return Some(c);
            }
        }
        if self.nodes.len() >= self.cap {
            return None;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeData::new(name));
        self.nodes[parent as usize].children.push(id);
        Some(id)
    }

    /// Push a frame for `name`; returns the stack depth the matching
    /// guard closes back to.
    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().map(|f| f.node).unwrap_or(ROOT);
        let node = if parent == DROPPED {
            self.dropped += 1;
            DROPPED
        } else {
            match self.child(parent, name) {
                Some(i) => i,
                None => {
                    self.truncated += 1;
                    self.dropped += 1;
                    DROPPED
                }
            }
        };
        let start_ns = self.now_ns();
        self.stack.push(Frame { node, start_ns });
        self.stack.len()
    }

    /// Close every frame at depth `depth` or deeper, attributing each
    /// at one shared clock reading. A no-op when the stack is already
    /// shallower (the frame was force-closed by an outer guard).
    fn exit_to(&mut self, depth: usize) {
        if self.stack.len() < depth {
            return;
        }
        let now = self.now_ns();
        while self.stack.len() >= depth {
            let f = self.stack.pop().expect("len checked");
            if f.node != DROPPED {
                let node = &mut self.nodes[f.node as usize];
                node.count += 1;
                node.total_ns += now - f.start_ns;
            }
        }
    }

    /// Record a queue-depth sample.
    pub fn sample_queue_depth(&mut self, depth: u64) {
        self.queue_depth.record(depth);
    }

    /// Fold another thread's finished [`Report`] into this profiler:
    /// its tree merges by call path into the final report (as top-level
    /// siblings of this thread's own spans), and its capacity counters
    /// and queue-depth samples sum. Used by the sharded coordinator to
    /// attribute worker-thread spans to the profiled run.
    pub fn absorb_report(&mut self, report: &Report) {
        self.foreign.absorb(&report.tree);
        self.dropped += report.dropped;
        self.truncated += report.truncated;
        self.queue_depth.absorb(&report.queue_depth);
    }

    /// Consume the profiler into a report, force-closing open frames.
    pub fn finish(mut self) -> Report {
        self.finish_in_place()
    }

    /// Drain into a report, leaving this profiler empty (used when RAII
    /// guards still hold handles to it; their later drops are no-ops).
    pub(crate) fn finish_in_place(&mut self) -> Report {
        self.exit_to(1);
        let nodes = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(|n| SpanNode {
                name: n.name,
                count: n.count,
                total_ns: n.total_ns,
                children: n.children,
            })
            .collect();
        let mut tree = SpanTree { nodes };
        let foreign = std::mem::take(&mut self.foreign);
        if !foreign.is_empty() {
            tree.absorb(&foreign);
        }
        Report {
            tree,
            dropped: std::mem::take(&mut self.dropped),
            truncated: std::mem::take(&mut self.truncated),
            queue_depth: std::mem::take(&mut self.queue_depth),
        }
    }
}

type Shared = Rc<RefCell<Profiler>>;

/// A cheap, cloneable handle to a thread's profiler. Empty when
/// profiling is disabled: [`Prof::span`] then costs one branch, the
/// same disabled-mode shape as `Trace::emit`.
#[derive(Clone, Default)]
pub struct Prof {
    inner: Option<Shared>,
}

impl Prof {
    /// A permanently disabled handle.
    pub fn disabled() -> Self {
        Prof { inner: None }
    }

    pub(crate) fn from_shared(inner: Option<Shared>) -> Self {
        Prof { inner }
    }

    /// True when spans opened through this handle are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it closes (and is attributed) when the returned
    /// guard drops — on scope exit, early return, or panic unwind.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { inner: None },
            Some(rc) => {
                let depth = rc.borrow_mut().enter(name);
                SpanGuard {
                    inner: Some((rc.clone(), depth)),
                }
            }
        }
    }

    /// Like [`Prof::span`] but consumes the handle, moving it into the
    /// guard (saves a refcount round-trip for one-shot resolution).
    #[inline]
    pub fn into_span(self, name: &'static str) -> SpanGuard {
        match self.inner {
            None => SpanGuard { inner: None },
            Some(rc) => {
                let depth = rc.borrow_mut().enter(name);
                SpanGuard {
                    inner: Some((rc, depth)),
                }
            }
        }
    }

    /// Record a queue-depth sample (no-op when disabled).
    #[inline]
    pub fn sample_queue_depth(&self, depth: u64) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().sample_queue_depth(depth);
        }
    }
}

/// RAII guard returned by [`Prof::span`]; closes the span on drop.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    inner: Option<(Shared, usize)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((rc, depth)) = self.inner.take() {
            // try_borrow_mut: drop can run mid-unwind; never panic here.
            if let Ok(mut p) = rc.try_borrow_mut() {
                p.exit_to(depth);
            }
        }
    }
}

/// One node of a [`SpanTree`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span name as passed to [`Prof::span`].
    pub name: &'static str,
    /// Completed frame count.
    pub count: u64,
    /// Total wall-clock nanoseconds across all frames.
    pub total_ns: u64,
    /// Child node indices, in first-entry order.
    pub children: Vec<u32>,
}

/// An immutable span-tree snapshot. Index 0 is a synthetic root
/// sentinel carrying no timing; [`SpanTree::roots`] are its children.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// Indices of the top-level spans, in first-entry order.
    pub fn roots(&self) -> &[u32] {
        match self.nodes.first() {
            Some(root) => &root.children,
            None => &[],
        }
    }

    /// The node at `index` (as found in a `children` list or
    /// [`SpanTree::roots`]).
    pub fn node(&self, index: u32) -> &SpanNode {
        &self.nodes[index as usize]
    }

    /// Self time of the node at `index`: `total − Σ children.total`.
    /// Exact by the nesting discipline; saturating as a belt against a
    /// hand-built inconsistent tree.
    pub fn self_ns(&self, index: u32) -> u64 {
        let n = self.node(index);
        let child_total: u64 = n.children.iter().map(|&c| self.node(c).total_ns).sum();
        n.total_ns.saturating_sub(child_total)
    }

    /// Sum of the top-level spans' totals — the tree's wall-clock
    /// coverage.
    pub fn total_root_ns(&self) -> u64 {
        self.roots().iter().map(|&r| self.node(r).total_ns).sum()
    }

    /// Number of recorded spans (excluding the root sentinel).
    pub fn len(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another tree into this one, matching nodes by call path
    /// and summing counts and totals. Used to aggregate per-experiment
    /// trees into one bench-wide breakdown.
    pub fn absorb(&mut self, other: &SpanTree) {
        if self.nodes.is_empty() {
            self.nodes.push(SpanNode {
                name: "",
                count: 0,
                total_ns: 0,
                children: Vec::new(),
            });
        }
        if other.nodes.is_empty() {
            return;
        }
        self.absorb_children(ROOT, other, ROOT);
    }

    fn absorb_children(&mut self, into: u32, other: &SpanTree, from: u32) {
        for &oc in other.node(from).children.clone().iter() {
            let oname = other.node(oc).name;
            let target = {
                let kids = &self.nodes[into as usize].children;
                kids.iter()
                    .copied()
                    .find(|&c| self.nodes[c as usize].name == oname)
            };
            let target = match target {
                Some(t) => t,
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(SpanNode {
                        name: oname,
                        count: 0,
                        total_ns: 0,
                        children: Vec::new(),
                    });
                    self.nodes[into as usize].children.push(id);
                    id
                }
            };
            self.nodes[target as usize].count += other.node(oc).count;
            self.nodes[target as usize].total_ns += other.node(oc).total_ns;
            self.absorb_children(target, other, oc);
        }
    }
}

/// Everything [`crate::take`] returns: the span tree plus the capacity
/// counters and the queue-depth sample summary.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The recorded span tree.
    pub tree: SpanTree,
    /// Span enters whose timing went unattributed (table full, or
    /// nested under a dropped frame). Always ≥ [`Report::truncated`].
    pub dropped: u64,
    /// Span enters that failed to allocate a new call-path node because
    /// the table was at capacity.
    pub truncated: u64,
    /// Queue-depth samples recorded via [`Prof::sample_queue_depth`].
    pub queue_depth: SampleSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(cap: usize) -> Prof {
        Prof::from_shared(Some(Rc::new(RefCell::new(Profiler::new(cap)))))
    }

    fn finish(prof: Prof) -> Report {
        let rc = prof.inner.expect("enabled");
        let report = rc.borrow_mut().finish_in_place();
        report
    }

    /// Busy-wait long enough for the monotonic clock to advance, so
    /// total/self assertions have real nonzero numbers to bite on.
    fn spin() {
        let t0 = Instant::now();
        while t0.elapsed().as_nanos() < 50_000 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_self_time_subtracts_children_exactly_once() {
        let prof = fresh(DEFAULT_SPAN_CAP);
        {
            let _a = prof.span("a");
            spin();
            {
                let _b = prof.span("b");
                spin();
                let _c = prof.span("c");
                spin();
            }
            {
                let _b = prof.span("b"); // same path → same node
                spin();
            }
        }
        let r = finish(prof);
        assert_eq!(r.tree.roots().len(), 1);
        let a = r.tree.roots()[0];
        let node_a = r.tree.node(a);
        assert_eq!(node_a.name, "a");
        assert_eq!(node_a.count, 1);
        assert_eq!(node_a.children.len(), 1, "both b-frames share one node");
        let b = node_a.children[0];
        let node_b = r.tree.node(b);
        assert_eq!(node_b.count, 2);
        let c = node_b.children[0];
        let node_c = r.tree.node(c);
        assert_eq!(node_c.count, 1);
        // Exact integer-ns consistency: child totals nest inside the
        // parent, self = total − Σ children with no rounding.
        assert!(node_c.total_ns > 0);
        assert!(node_b.total_ns >= node_c.total_ns);
        assert!(node_a.total_ns >= node_b.total_ns);
        assert_eq!(r.tree.self_ns(b) + node_c.total_ns, node_b.total_ns);
        assert_eq!(r.tree.self_ns(a) + node_b.total_ns, node_a.total_ns);
        // Each child's time is subtracted exactly once: the sum of all
        // self times equals the root total.
        let self_sum = r.tree.self_ns(a) + r.tree.self_ns(b) + r.tree.self_ns(c);
        assert_eq!(self_sum, node_a.total_ns);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.truncated, 0);
    }

    #[test]
    fn sibling_paths_get_distinct_nodes() {
        let prof = fresh(DEFAULT_SPAN_CAP);
        {
            let _d = prof.span("dispatch");
            let _q = prof.span("queue.pop");
        }
        {
            let _w = prof.span("wake");
            let _q = prof.span("queue.pop");
        }
        let r = finish(prof);
        assert_eq!(r.tree.roots().len(), 2, "two top-level spans");
        for &root in r.tree.roots() {
            let n = r.tree.node(root);
            assert_eq!(n.children.len(), 1);
            assert_eq!(r.tree.node(n.children[0]).name, "queue.pop");
        }
    }

    #[test]
    fn guard_drop_on_early_return() {
        fn inner(prof: &Prof, bail: bool) -> u32 {
            let _g = prof.span("inner");
            if bail {
                return 1; // guard drops here
            }
            2
        }
        let prof = fresh(DEFAULT_SPAN_CAP);
        {
            let _o = prof.span("outer");
            assert_eq!(inner(&prof, true), 1);
            assert_eq!(inner(&prof, false), 2);
        }
        let r = finish(prof);
        let outer = r.tree.node(r.tree.roots()[0]);
        assert_eq!(outer.count, 1);
        let inner_node = r.tree.node(outer.children[0]);
        assert_eq!(inner_node.count, 2, "both returns closed the span");
    }

    #[test]
    fn guard_drop_on_panic_unwind() {
        let prof = fresh(DEFAULT_SPAN_CAP);
        let p2 = prof.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = p2.span("doomed");
            panic!("boom");
        }));
        assert!(caught.is_err());
        {
            let _g = prof.span("after");
        }
        let r = finish(prof);
        let names: Vec<&str> = r
            .tree
            .roots()
            .iter()
            .map(|&i| r.tree.node(i).name)
            .collect();
        assert_eq!(names, vec!["doomed", "after"], "unwound span was closed");
        assert_eq!(r.tree.node(r.tree.roots()[0]).count, 1);
    }

    #[test]
    fn out_of_order_parent_drop_force_closes_children() {
        let prof = fresh(DEFAULT_SPAN_CAP);
        let parent = prof.span("parent");
        let child = prof.span("child");
        drop(parent); // closes child too, at the parent's exit instant
        drop(child); // stale guard: must be a silent no-op
        let r = finish(prof);
        let p = r.tree.node(r.tree.roots()[0]);
        assert_eq!(p.count, 1);
        let c = r.tree.node(p.children[0]);
        assert_eq!(c.count, 1, "child closed exactly once");
        assert!(c.total_ns <= p.total_ns);
    }

    #[test]
    fn table_capacity_overflow_is_counted_not_recorded() {
        static NAMES: [&str; 8] = ["n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"];
        // Capacity 4 = root sentinel + 3 real nodes.
        let prof = fresh(4);
        for name in NAMES {
            let _g = prof.span(name);
        }
        // Re-entering a recorded path still works at capacity...
        {
            let _g = prof.span("n0");
            // ...and spans under a dropped frame are dropped too.
            let _h = prof.span("n7");
            let _i = prof.span("n0");
        }
        let r = finish(prof);
        assert_eq!(r.tree.len(), 3, "table capped at 3 real nodes");
        assert_eq!(r.truncated, 5 + 1, "n3..n7 plus the nested n7 retry");
        assert_eq!(
            r.dropped,
            6 + 1,
            "truncated enters plus the n0 under a dropped frame"
        );
        assert_eq!(r.tree.node(r.tree.roots()[0]).count, 2, "n0 recorded twice");
    }

    #[test]
    fn absorb_merges_by_call_path() {
        let mk = |extra: bool| {
            let prof = fresh(DEFAULT_SPAN_CAP);
            {
                let _a = prof.span("a");
                let _b = prof.span("b");
            }
            if extra {
                let _c = prof.span("c");
            }
            finish(prof)
        };
        let r1 = mk(false);
        let r2 = mk(true);
        let mut agg = SpanTree::default();
        agg.absorb(&r1.tree);
        agg.absorb(&r2.tree);
        assert_eq!(agg.roots().len(), 2, "a and c");
        let a = agg.node(agg.roots()[0]);
        assert_eq!(a.name, "a");
        assert_eq!(a.count, 2);
        let b = agg.node(a.children[0]);
        assert_eq!(b.count, 2);
        assert_eq!(
            a.total_ns,
            r1.tree.node(r1.tree.roots()[0]).total_ns + r2.tree.node(r2.tree.roots()[0]).total_ns
        );
        assert_eq!(agg.node(agg.roots()[1]).name, "c");
    }

    #[test]
    fn absorbed_report_merges_into_finished_tree() {
        let worker = fresh(DEFAULT_SPAN_CAP);
        {
            let _s = worker.span("superstep");
            let _a = worker.span("advance");
        }
        worker.sample_queue_depth(7);
        let worker_report = finish(worker);

        let main = fresh(DEFAULT_SPAN_CAP);
        {
            let _m = main.span("merge");
        }
        main.inner
            .as_ref()
            .expect("enabled")
            .borrow_mut()
            .absorb_report(&worker_report);
        let r = finish(main);
        let names: Vec<&str> = r
            .tree
            .roots()
            .iter()
            .map(|&i| r.tree.node(i).name)
            .collect();
        assert_eq!(names, vec!["merge", "superstep"]);
        let ss = r.tree.node(r.tree.roots()[1]);
        assert_eq!(r.tree.node(ss.children[0]).name, "advance");
        assert_eq!(r.queue_depth.count, 1);
        assert_eq!(r.queue_depth.max, 7);
    }

    #[test]
    fn sample_summary_tracks_count_sum_max() {
        let mut s = SampleSummary::default();
        assert_eq!(s.mean(), 0.0);
        for v in [3, 9, 6] {
            s.record(v);
        }
        assert_eq!((s.count, s.sum, s.max), (3, 18, 9));
        assert_eq!(s.mean(), 6.0);
        let mut t = SampleSummary::default();
        t.record(11);
        s.absorb(&t);
        assert_eq!((s.count, s.sum, s.max), (4, 29, 11));
    }
}
