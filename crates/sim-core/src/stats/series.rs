//! Sampled time-series traces for plot-style experiment output.

use crate::time::Instant;
use core::fmt;

/// A named `(t, value)` trace.
///
/// Experiments emit these for quantities whose evolution over time *is* the
/// result (buffer occupancy, send rate under flow control). The harness
/// prints them as aligned columns that can be piped into any plotting tool.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    points: Vec<(Instant, f64)>,
}

impl Series {
    /// Create an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one sample. Samples should be pushed in time order; this is
    /// asserted in debug builds.
    pub fn push(&mut self, t: Instant, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| t >= lt),
            "Series::push: out-of-order sample"
        );
        self.points.push((t, v));
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples, in time order.
    pub fn points(&self) -> &[(Instant, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sampled value, `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Final sampled value, `None` if empty.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Downsample to at most `max_points` samples by uniform decimation
    /// (keeps first and last). Useful for printing long traces.
    pub fn decimate(&self, max_points: usize) -> Series {
        if self.points.len() <= max_points || max_points < 2 {
            return self.clone();
        }
        let mut out = Series::new(self.name.clone());
        let n = self.points.len();
        for i in 0..max_points {
            let idx = i * (n - 1) / (max_points - 1);
            let (t, v) = self.points[idx];
            out.push(t, v);
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {} ({} points)", self.name, self.points.len())?;
        for &(t, v) in &self.points {
            writeln!(f, "{:>16.9} {:>16.6}", t.as_secs_f64(), v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = Series::new("queue");
        assert!(s.is_empty());
        s.push(Instant::from_secs(1), 2.0);
        s.push(Instant::from_secs(2), 5.0);
        s.push(Instant::from_secs(3), 1.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(5.0));
        assert_eq!(s.last_value(), Some(1.0));
        assert_eq!(s.name(), "queue");
    }

    #[test]
    fn decimate_keeps_endpoints() {
        let mut s = Series::new("x");
        for i in 0..1000 {
            s.push(Instant::from_millis(i), i as f64);
        }
        let d = s.decimate(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.points()[0].1, 0.0);
        assert_eq!(d.points()[9].1, 999.0);
    }

    #[test]
    fn decimate_short_series_unchanged() {
        let mut s = Series::new("x");
        s.push(Instant::ZERO, 1.0);
        let d = s.decimate(10);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn empty_series_maxes() {
        let s = Series::new("e");
        assert_eq!(s.max_value(), None);
        assert_eq!(s.last_value(), None);
    }
}
