//! Analysis ↔ simulation cross-validation: every closed-form quantity of
//! §4 checked against the discrete-event implementation at a size where
//! the law of large numbers makes the comparison meaningful.

use analysis::buffer::b_lams;
use analysis::delivery::{d_low_hdlc, d_low_lams};
use analysis::holding::h_frame_lams;
use analysis::periods::{s_bar_hdlc, s_bar_lams};
use analysis::throughput::{efficiency_hdlc, efficiency_lams};
use harness::{run_lams, run_sr, Pattern, ScenarioConfig};
use sim_core::Duration;

fn cfg(n: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::paper_default();
    c.n_packets = n;
    c.deadline = Duration::from_secs(600);
    c
}

#[test]
fn retransmission_count_matches_s_bar() {
    // E[transmissions per delivered frame] = s̄.
    let mut c = cfg(30_000);
    c.data_residual_ber = 1e-5;
    c.ctrl_residual_ber = 1e-6;
    let p = c.link_params();
    let lams = run_lams(&c);
    let per_frame = lams.transmissions as f64 / lams.delivered_unique as f64;
    let expect = s_bar_lams(&p);
    assert!(
        (per_frame - expect).abs() / expect < 0.03,
        "lams: {per_frame} vs s̄ {expect}"
    );
    let sr = run_sr(&c);
    let per_frame_sr = sr.transmissions as f64 / sr.delivered_unique as f64;
    let expect_sr = s_bar_hdlc(&p);
    // HDLC timeouts resend whole batches, so allow more slack upward.
    assert!(
        per_frame_sr > expect_sr * 0.9 && per_frame_sr < expect_sr * 1.6,
        "sr: {per_frame_sr} vs s̄ {expect_sr}"
    );
}

#[test]
fn low_traffic_delivery_times_converge() {
    // Error-light regime where the paper's tail term is exact.
    let mut c = cfg(800);
    c.data_residual_ber = 1e-9;
    c.ctrl_residual_ber = 1e-10;
    let p = c.link_params();
    let mut lams_t = 0.0;
    let mut sr_t = 0.0;
    let seeds = 5;
    for s in 1..=seeds {
        c.seed = s;
        lams_t += run_lams(&c).elapsed_s();
        sr_t += run_sr(&c).elapsed_s();
    }
    lams_t /= seeds as f64;
    sr_t /= seeds as f64;
    let lams_a = d_low_lams(&p, 800);
    let sr_a = d_low_hdlc(&p, 800);
    assert!(
        (lams_t - lams_a).abs() / lams_a < 0.12,
        "lams sim {lams_t} vs {lams_a}"
    );
    assert!((sr_t - sr_a).abs() / sr_a < 0.12, "sr sim {sr_t} vs {sr_a}");
}

#[test]
fn high_traffic_efficiency_converges() {
    let c = cfg(50_000);
    let p = c.link_params();
    let lams = run_lams(&c);
    let a = efficiency_lams(&p, 50_000);
    assert!(
        (lams.efficiency() - a).abs() / a < 0.12,
        "lams sim {} vs analytic {a}",
        lams.efficiency()
    );
    let sr = run_sr(&c);
    let ah = efficiency_hdlc(&p, 50_000);
    assert!(
        (sr.efficiency() - ah).abs() / ah < 0.2,
        "sr sim {} vs analytic {ah}",
        sr.efficiency()
    );
}

#[test]
fn mean_holding_time_converges() {
    let mut c = cfg(30_000);
    c.data_residual_ber = 1e-6;
    let p = c.link_params();
    let r = run_lams(&c);
    let a = h_frame_lams(&p);
    let s = r.holding.mean();
    assert!((s - a).abs() / a < 0.12, "sim {s} vs analytic {a}");
}

#[test]
fn transparent_buffer_bound_holds_at_saturation() {
    // Under CBR at the line rate the LAMS sending buffer's steady state
    // stays within a small factor of the analytic B_LAMS.
    let mut c = cfg(0);
    let t_f = c.t_f();
    c.pattern = Pattern::Cbr { interval: t_f };
    c.n_packets = (1.0 / t_f.as_secs_f64()) as u64; // 1 s of load
    c.deadline = Duration::from_secs(1);
    let p = c.link_params();
    let r = run_lams(&c);
    let bound = b_lams(&p);
    // Steady state: use the trace's final value (transients decayed).
    let steady = r.tx_buffer.last_value().unwrap_or(0.0);
    assert!(
        steady < 2.0 * bound,
        "steady occupancy {steady} vs transparent size {bound}"
    );
    assert!(
        steady > 0.2 * bound,
        "suspiciously empty buffer {steady} vs bound {bound} (measurement bug?)"
    );
}

#[test]
fn checkpoint_loss_defers_by_one_interval() {
    // §3.3: a lost checkpoint costs LAMS one W_cp of extra holding, not a
    // round trip. Compare holding at clean vs lossy control channels: the
    // increment should be ≈ (n̄_cp − 1)·W_cp ≪ RTT.
    let mut clean = cfg(20_000);
    clean.data_residual_ber = 1e-6;
    clean.ctrl_residual_ber = 0.0;
    let mut lossy = cfg(20_000);
    lossy.data_residual_ber = 1e-6;
    lossy.ctrl_residual_ber = 3e-4; // P_C ≈ 9%
    let h_clean = run_lams(&clean).holding.mean();
    let h_lossy = run_lams(&lossy).holding.mean();
    let increment = h_lossy - h_clean;
    let w_cp = clean.w_cp.as_secs_f64();
    let rtt = clean.rtt().as_secs_f64();
    assert!(increment > 0.0, "control loss must cost something");
    assert!(
        increment < rtt / 2.0,
        "increment {increment}s should be ≪ RTT {rtt}s (got more than half)"
    );
    assert!(
        increment < 3.0 * w_cp,
        "increment {increment}s should be on the order of W_cp {w_cp}s"
    );
}
