//! Endpoint driving contract — the historical home of the per-protocol
//! adapters.
//!
//! The six bespoke adapter structs that used to live here (`LamsTx`,
//! `LamsRx`, `SrTx`, `SrRx`, `GbnTx`, `GbnRx` — ~465 lines of glue) are
//! gone: the protocol state machines implement the host-agnostic
//! [`proto_core::Machine`] trait family themselves, and netsim's one
//! generic [`Driver`] binds any of them to the engine's
//! [`TxEndpoint`] / [`RxEndpoint`] contract. This module keeps the
//! harness's historical import paths alive.

pub use netsim::driver::Driver;
pub use netsim::endpoint::{FrameMeta, RxEndpoint, TxEndpoint};
