//! One generic driver binding any sans-IO [`Machine`] to the engine.
//!
//! Before `proto-core` existed, every protocol needed a bespoke adapter
//! struct (six of them, ~465 lines in the harness) translating between
//! its inherent API and the [`TxEndpoint`] / [`RxEndpoint`] driving
//! contract. The machines now implement the host-agnostic
//! [`SenderMachine`] / [`ReceiverMachine`] traits themselves, so a
//! single [`Driver`] covers all of them: it bridges the engine's
//! `ok: bool` channel verdict onto [`RxStatus`], aggregates holding-time
//! samples from the machine's event stream, and renders
//! [`SenderMachine::stat_pairs`] into the experiment [`Registry`].

use crate::endpoint::{FrameMeta, RxEndpoint, TxEndpoint};
use bytes::Bytes;
use proto_core::{ReceiverMachine, RxStatus, SenderMachine, WireFrame};
use sim_core::Instant;
use telemetry::Registry;

/// Generic endpoint adapter: drives any [`Machine`] under the engine.
///
/// `Driver<lams_dlc::Sender>` replaces the old `LamsTx`,
/// `Driver<hdlc::SrReceiver>` the old `SrRx`, and so on — one wrapper,
/// six protocol roles.
pub struct Driver<M> {
    /// The wrapped protocol state machine.
    pub inner: M,
    /// Holding-time samples (seconds) drained from the machine's event
    /// stream, awaiting collection by the engine.
    holding: Vec<f64>,
}

impl<M> Driver<M> {
    /// Wrap a configured machine.
    pub fn new(inner: M) -> Self {
        Driver {
            inner,
            holding: Vec::new(),
        }
    }
}

fn status(ok: bool) -> RxStatus {
    if ok {
        RxStatus::Ok
    } else {
        RxStatus::PayloadCorrupted
    }
}

impl<M> TxEndpoint for Driver<M>
where
    M: SenderMachine,
    M::Frame: WireFrame + Clone,
{
    type Frame = M::Frame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn push(&mut self, id: u64, payload: Bytes) -> bool {
        self.inner.push(id, payload)
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        self.inner.handle_frame(now, frame, status(ok));
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn is_failed(&self) -> bool {
        self.inner.is_failed()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: frame.wire_len(),
            is_info: frame.is_info(),
        }
    }

    fn drain_holding(&mut self, out: &mut Vec<f64>) {
        while let Some(event) = self.inner.poll_event() {
            if let Some(held_ns) = M::released_holding_ns(&event) {
                self.holding.push(held_ns as f64 / 1e9);
            }
        }
        out.append(&mut self.holding);
    }

    fn rate(&self) -> f64 {
        self.inner.rate()
    }

    fn transmissions(&self) -> u64 {
        self.inner.transmissions()
    }

    fn retransmissions(&self) -> u64 {
        self.inner.retransmissions()
    }

    fn extra_stats(&self) -> Registry {
        Registry::from_iter(SenderMachine::stat_pairs(&self.inner))
    }
}

impl<M> RxEndpoint for Driver<M>
where
    M: ReceiverMachine,
    M::Frame: WireFrame + Clone,
{
    type Frame = M::Frame;

    fn start(&mut self, now: Instant) {
        self.inner.start(now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Self::Frame, ok: bool) {
        self.inner.handle_frame(now, frame, status(ok));
    }

    fn on_timeout(&mut self, now: Instant) {
        self.inner.on_timeout(now);
    }

    fn poll_timeout(&self) -> Option<Instant> {
        self.inner.poll_timeout()
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Self::Frame> {
        self.inner.poll_transmit(now)
    }

    fn poll_deliver(&mut self, now: Instant) -> Option<(u64, usize)> {
        self.inner
            .poll_deliver(now)
            .map(|d| (d.id, d.payload.len()))
    }

    fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    fn meta(frame: &Self::Frame) -> FrameMeta {
        FrameMeta {
            bytes: frame.wire_len(),
            is_info: frame.is_info(),
        }
    }

    fn extra_stats(&self) -> Registry {
        Registry::from_iter(ReceiverMachine::stat_pairs(&self.inner))
    }
}
