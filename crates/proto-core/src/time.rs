//! Host-agnostic virtual time.
//!
//! Both [`Instant`] (a point on a timeline) and [`Duration`] (a span between
//! two points) are thin wrappers over `u64` nanosecond counts, cheap to copy
//! and totally ordered. They carry no clock source: under the simulator `t = 0`
//! is the start of the run and the event loop advances time; under a real
//! driver (the UDP demo) the host maps a wall-clock epoch onto the same axis.
//!
//! Protocols in this workspace are *sans-IO*: they never read a clock.
//! Every entry point takes `now: Instant`, and timer state is expressed as
//! "the next instant at which I want to be polled". This keeps every run
//! bit-for-bit reproducible (paper assumption 8: deterministic parameters).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds from the start of the
/// simulation (t = 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

/// A span of simulated time in nanoseconds.
///
/// Durations are unsigned; subtracting a later instant from an earlier one
/// panics in debug builds (saturates in release), the same contract as
/// `std::time`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Instant {
    /// The origin of the simulation timeline.
    pub const ZERO: Instant = Instant { nanos: 0 };
    /// The greatest representable instant; used as "no deadline".
    pub const MAX: Instant = Instant { nanos: u64::MAX };

    /// Construct from raw nanoseconds since t = 0.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant { nanos }
    }

    /// Construct from microseconds since t = 0.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Instant {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds since t = 0.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Instant {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from whole seconds since t = 0.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Instant {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Nanoseconds since t = 0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since t = 0 as a float (for reporting only; never use floats
    /// to drive simulation control flow).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Saturates to zero if `earlier` is in
    /// the future (debug builds panic, matching `std::time::Instant`).
    #[inline]
    pub fn duration_since(self, earlier: Instant) -> Duration {
        debug_assert!(
            self >= earlier,
            "duration_since: earlier ({earlier:?}) is after self ({self:?})"
        );
        Duration {
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }

    /// `self + d`, saturating at [`Instant::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Instant {
        Instant {
            nanos: self.nanos.saturating_add(d.nanos),
        }
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: Duration) -> Option<Instant> {
        self.nanos.checked_sub(d.nanos).map(Instant::from_nanos)
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration { nanos: 0 };
    /// The longest representable duration; used as "never".
    pub const MAX: Duration = Duration { nanos: u64::MAX };

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Duration {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Duration {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Duration::from_secs_f64: invalid seconds {secs}"
        );
        Duration {
            nanos: (secs * 1e9).round() as u64,
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Milliseconds as a float (reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Microseconds as a float (reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.nanos as f64 / 1e3
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_add(other.nanos),
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_sub(other.nanos),
        }
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.nanos.checked_mul(factor).map(Duration::from_nanos)
    }

    /// Multiply by a non-negative float, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite factors.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "Duration::mul_f64: invalid factor {factor}"
        );
        Duration {
            nanos: (self.nanos as f64 * factor).round() as u64,
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            nanos: self.nanos.checked_add(rhs.nanos).expect("Instant overflow"),
        }
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                .expect("Instant underflow"),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                .expect("Duration overflow"),
        }
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                .expect("Duration underflow"),
        }
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration {
            nanos: self.nanos.checked_mul(rhs).expect("Duration overflow"),
        }
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration {
            nanos: self.nanos / rhs,
        }
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration::from_nanos(self.nanos))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.nanos;
        if n == u64::MAX {
            write!(f, "∞")
        } else if n >= 1_000_000_000 {
            write!(f, "{:.6}s", n as f64 / 1e9)
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3}µs", n as f64 / 1e3)
        } else {
            write!(f, "{n}ns")
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_roundtrip_units() {
        assert_eq!(Instant::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Instant::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Instant::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Instant::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn duration_roundtrip_units() {
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_micros(1).as_nanos(), 1_000);
        assert!((Duration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_instant_duration() {
        let t = Instant::from_millis(10);
        let d = Duration::from_millis(5);
        assert_eq!((t + d).as_nanos(), 15_000_000);
        assert_eq!((t - d).as_nanos(), 5_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(Duration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_div_duration() {
        let d = Duration::from_micros(3);
        assert_eq!((d * 4).as_nanos(), 12_000);
        assert_eq!((d / 3).as_nanos(), 1_000);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 1_500);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Instant::MAX.saturating_add(Duration::from_secs(1)),
            Instant::MAX
        );
        assert_eq!(
            Duration::from_nanos(5).saturating_sub(Duration::from_nanos(9)),
            Duration::ZERO
        );
        assert_eq!(Instant::ZERO.checked_sub(Duration::from_nanos(1)), None);
    }

    #[test]
    fn ordering() {
        assert!(Instant::from_nanos(1) < Instant::from_nanos(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
        assert_eq!(
            Instant::ZERO.max(Instant::from_nanos(4)),
            Instant::from_nanos(4)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000µs");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000000s");
        assert_eq!(format!("{}", Duration::MAX), "∞");
    }
}
