//! Cross-protocol comparison over identical channel realisations
//! (common random numbers): the paper's §4 claims as end-to-end
//! observables.

use harness::{run_gbn, run_lams, run_sr, ScenarioConfig};
use sim_core::Duration;

fn cfg(n: u64, ber: f64) -> ScenarioConfig {
    let mut c = ScenarioConfig::paper_default();
    c.n_packets = n;
    c.data_residual_ber = ber;
    c.ctrl_residual_ber = ber / 10.0;
    c.deadline = Duration::from_secs(300);
    c
}

#[test]
fn all_protocols_are_reliable() {
    let c = cfg(3_000, 1e-5);
    for r in [run_lams(&c), run_sr(&c), run_gbn(&c)] {
        assert_eq!(r.lost, 0, "{}: lost frames", r.protocol);
        assert_eq!(r.delivered_unique, 3_000, "{}", r.protocol);
    }
}

#[test]
fn saturation_ranking_matches_paper() {
    // η_LAMS > η_SR > η_GBN at the paper's operating point: LAMS avoids
    // the window stall; GBN additionally wastes every good frame behind a
    // loss.
    let c = cfg(20_000, 1e-6);
    let lams = run_lams(&c);
    let sr = run_sr(&c);
    let gbn = run_gbn(&c);
    assert!(
        lams.efficiency() > sr.efficiency(),
        "lams {} !> sr {}",
        lams.efficiency(),
        sr.efficiency()
    );
    assert!(
        sr.efficiency() >= gbn.efficiency() * 0.95,
        "sr {} should be at least on par with gbn {}",
        sr.efficiency(),
        gbn.efficiency()
    );
}

#[test]
fn gbn_discards_good_frames_sr_does_not() {
    // §2.3: a GBN receiver throws away every uncorrupted frame that
    // follows a loss; SR buffers them.
    let c = cfg(10_000, 1e-5);
    let sr = run_sr(&c);
    let gbn = run_gbn(&c);
    let discarded = gbn.rx_extras.get("hdlc.gbn_receiver.discarded").unwrap();
    assert!(
        discarded > 100.0,
        "expected heavy GBN discards at this BER: {discarded}"
    );
    assert!(gbn.retransmissions > sr.retransmissions);
}

#[test]
fn lams_retransmits_fewer_frames_per_delivery() {
    // P_R^LAMS = P_F vs P_R^HDLC = P_F + P_C − P_F·P_C: with a noisy
    // control channel the HDLC retransmission count must exceed LAMS's.
    let mut c = cfg(10_000, 1e-5);
    c.ctrl_residual_ber = 1e-4; // hostile acknowledgement path
    let lams = run_lams(&c);
    let sr = run_sr(&c);
    assert_eq!(lams.lost, 0);
    assert_eq!(sr.lost, 0);
    assert!(
        lams.retransmission_ratio() < sr.retransmission_ratio(),
        "lams {} !< sr {}",
        lams.retransmission_ratio(),
        sr.retransmission_ratio()
    );
}

#[test]
fn sr_receiver_buffers_up_to_window_lams_does_not_hold() {
    // §4: the SR receiving buffer must hold out-of-order frames (up to
    // the window); LAMS's receiving occupancy is processing-only.
    let c = cfg(10_000, 1e-5);
    let sr = run_sr(&c);
    let peak = sr
        .rx_extras
        .get("hdlc.sr_receiver.peak_reseq_buffer")
        .unwrap();
    assert!(peak > 10.0, "SR resequencing buffer should fill: {peak}");
    let lams = run_lams(&c);
    let lams_rx_peak = lams.rx_buffer.max_value().unwrap_or(0.0);
    assert!(
        lams_rx_peak < peak,
        "LAMS receive occupancy {lams_rx_peak} should stay below SR's {peak}"
    );
}

#[test]
fn identical_seed_identical_channel_for_all_protocols() {
    // The common-random-numbers design: two runs of the same protocol are
    // bit-identical, and different protocols see the same error process.
    let c = cfg(2_000, 1e-5);
    let a = run_lams(&c);
    let b = run_lams(&c);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.retransmissions, b.retransmissions);
    let s1 = run_sr(&c);
    let s2 = run_sr(&c);
    assert_eq!(s1.finished_at, s2.finished_at);
}

#[test]
fn long_link_amplifies_lams_advantage() {
    // §4's distance claim as a sim observable.
    let mut near = cfg(10_000, 1e-6);
    near.distance_km = 2_000.0;
    let mut far = cfg(10_000, 1e-6);
    far.distance_km = 10_000.0;
    let ratio_near = run_lams(&near).efficiency() / run_sr(&near).efficiency();
    let ratio_far = run_lams(&far).efficiency() / run_sr(&far).efficiency();
    assert!(
        ratio_far > ratio_near,
        "near ratio {ratio_near}, far ratio {ratio_far}"
    );
}
