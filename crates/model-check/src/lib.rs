#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # model-check
//!
//! Deterministic adversarial model checking for the sans-IO LAMS-DLC
//! machines. This crate depends on `proto-core` and `lams-dlc` only —
//! no simulator, no telemetry: it is the existence proof that the
//! protocol state machines can be explored as pure functions of
//! `(time, frame)` inputs.
//!
//! Each [`Schedule`] derives, from a single index, a seeded channel
//! adversary that may **drop**, **duplicate**, **reorder** (extra
//! delay), or **corrupt** frames in either direction, and may bound the
//! channel's in-flight **capacity** (overflow behaves as loss). The
//! explorer advances a virtual clock from event to event — next frame
//! arrival or next machine deadline — exactly like a host would, and
//! checks on every step:
//!
//! * **exactly-once, in-order delivery** — the resequenced application
//!   stream is `0, 1, 2, …` with no duplicate and no gap;
//! * **monotone wire numbering** — every information frame the sender
//!   emits carries a strictly larger logical sequence number than the
//!   previous one (renumbering never reuses);
//! * **bounded numbering** — every frame survives a wire round-trip
//!   (`wire::encode` → `wire::decode` against the receiver's current
//!   reference); if the compressed sequence window were ever outrun,
//!   the decode would disagree with the original frame;
//! * **progress** — with SDUs undelivered there is always a pending
//!   arrival or an armed timer, and the whole run finishes within a
//!   generous step budget.
//!
//! A run ends in [`Outcome::Complete`] when every SDU has been
//! delivered and the sender has released every buffer, or in
//! [`Outcome::LinkFailed`] when the sender's failure timer fired — the
//! protocol's *declared* terminal state, acceptable only because the
//! adversary really was severing the link ([`Schedule::drop_pct`] or
//! [`Schedule::corrupt_pct`] non-zero).

use bytes::Bytes;
use lams_dlc::{
    wire, Frame, LamsConfig, PacketId, Receiver, Resequencer, RxStatus, Sender, SenderState,
};
use proto_core::{Duration, Instant};

mod rng;
pub use rng::Rng;

/// One adversarial channel schedule, fully determined by its fields.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// RNG seed for every per-frame adversary decision.
    pub seed: u64,
    /// SDUs to transfer.
    pub sdus: u64,
    /// Percent of frames dropped outright.
    pub drop_pct: u8,
    /// Percent of frames duplicated (the copy takes a longer path).
    pub dup_pct: u8,
    /// Percent of frames given extra delay (causes reordering).
    pub reorder_pct: u8,
    /// Percent of frames delivered payload-corrupted: information
    /// frames take the receiver's NAK path, control frames are dropped
    /// by the sender's FEC check — the paper's corrupt-feedback case.
    pub corrupt_pct: u8,
    /// Channel capacity: frames in flight beyond this are lost
    /// (`usize::MAX` = unbounded).
    pub capacity: usize,
}

impl Schedule {
    /// Derive the `index`-th schedule of the standard sweep: a
    /// deterministic spread over loss, duplication, reordering,
    /// corruption and capacity regimes (including the clean channel).
    pub fn derive(index: u64) -> Schedule {
        let mut r = Rng::new(0x9E37_79B9_7F4A_7C15 ^ (index.wrapping_mul(0xA24B_AED4_963E_E407)));
        let seed = r.next_u64();
        Schedule {
            seed,
            sdus: [20, 50, 100][(r.next_u64() % 3) as usize],
            drop_pct: [0, 5, 10, 20, 30][(r.next_u64() % 5) as usize],
            dup_pct: [0, 5, 15][(r.next_u64() % 3) as usize],
            reorder_pct: [0, 10, 25][(r.next_u64() % 3) as usize],
            corrupt_pct: [0, 5, 15][(r.next_u64() % 3) as usize],
            capacity: [8, 32, usize::MAX, usize::MAX][(r.next_u64() % 4) as usize],
        }
    }

    fn is_adversarial(&self) -> bool {
        self.drop_pct > 0 || self.corrupt_pct > 0 || self.capacity != usize::MAX
    }
}

/// Terminal state of one schedule run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All SDUs delivered exactly once in order; sender drained.
    Complete {
        /// Explorer steps taken.
        steps: u64,
        /// Virtual time consumed.
        elapsed: Duration,
        /// Sender retransmissions performed.
        retransmissions: u64,
    },
    /// The sender's failure timer fired and it declared the link dead —
    /// legitimate under a severing adversary, an invariant violation
    /// otherwise (reported as [`Violation`], not as this variant).
    LinkFailed {
        /// SDUs that made it through, in order, before the declaration.
        delivered: u64,
    },
}

/// A broken invariant, with enough context to replay the schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The offending schedule (re-run it to reproduce).
    pub schedule: Schedule,
    /// What broke.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under {:?}", self.what, self.schedule)
    }
}

/// A frame in flight, queued for arrival.
struct InFlight {
    arrival: Instant,
    frame: Frame,
    status: RxStatus,
    /// Tie-break so equal arrival instants pop in send order.
    order: u64,
}

/// One direction of the adversarial channel.
struct AdversarialLink {
    in_flight: Vec<InFlight>,
    base_delay: Duration,
    next_order: u64,
}

impl AdversarialLink {
    fn new(base_delay: Duration) -> Self {
        AdversarialLink {
            in_flight: Vec::new(),
            base_delay,
            next_order: 0,
        }
    }

    /// Apply the adversary's per-frame decisions and enqueue.
    fn send(&mut self, now: Instant, frame: Frame, sched: &Schedule, rng: &mut Rng) {
        if self.in_flight.len() >= sched.capacity || rng.chance(sched.drop_pct) {
            return; // capacity overflow and random loss both look like silence
        }
        let status = if rng.chance(sched.corrupt_pct) {
            RxStatus::PayloadCorrupted
        } else {
            RxStatus::Ok
        };
        let jitter = if rng.chance(sched.reorder_pct) {
            Duration::from_micros(rng.below(5_000))
        } else {
            Duration::ZERO
        };
        let duplicate = rng.chance(sched.dup_pct);
        let arrival = now + self.base_delay + jitter;
        self.push(arrival, frame.clone(), status);
        if duplicate && self.in_flight.len() < sched.capacity {
            let late = arrival + Duration::from_micros(1_000 + rng.below(10_000));
            self.push(late, frame, status);
        }
    }

    fn push(&mut self, arrival: Instant, frame: Frame, status: RxStatus) {
        self.in_flight.push(InFlight {
            arrival,
            frame,
            status,
            order: self.next_order,
        });
        self.next_order += 1;
    }

    fn next_arrival(&self) -> Option<Instant> {
        self.in_flight.iter().map(|f| f.arrival).min()
    }

    /// Pop the earliest frame due at or before `now`, if any.
    fn pop_due(&mut self, now: Instant) -> Option<(Frame, RxStatus)> {
        let idx = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, f)| f.arrival <= now)
            .min_by_key(|(_, f)| (f.arrival, f.order))
            .map(|(i, _)| i)?;
        let f = self.in_flight.swap_remove(idx);
        Some((f.frame, f.status))
    }
}

/// Step budget per schedule: far beyond any legitimate run (a clean
/// 100-SDU transfer takes a few thousand steps), so hitting it means
/// livelock.
const MAX_STEPS: u64 = 500_000;

/// Run one schedule to its terminal state, checking every invariant on
/// the way.
pub fn run_schedule(sched: &Schedule) -> Result<Outcome, Violation> {
    let cfg = LamsConfig::paper_default();
    let modulus = cfg.seq_modulus();
    // Nominal one-way delay just under half the configured round trip,
    // so an unmolested frame meets the paper's deterministic-RTT
    // assumption while any adversary jitter lands it late.
    let base_delay = Duration::from_nanos(cfg.expected_rtt.as_nanos() / 2 - 100_000);

    let violation = |what: String| Violation {
        schedule: sched.clone(),
        what,
    };

    let mut rng = Rng::new(sched.seed);
    let mut sender = Sender::new(cfg.clone());
    let mut receiver = Receiver::new(cfg);
    let mut data_link = AdversarialLink::new(base_delay); // sender → receiver
    let mut feedback_link = AdversarialLink::new(base_delay); // receiver → sender

    let mut now = Instant::ZERO;
    sender.start(now);
    receiver.start(now);

    let mut next_id: u64 = 0;
    let mut expected: u64 = 0;
    let mut reseq = Resequencer::new(0);
    let mut last_info_seq: Option<u64> = None;
    let mut tx_reference: u64 = 0;
    let mut steps: u64 = 0;

    loop {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(violation(format!(
                "no termination within {MAX_STEPS} steps (delivered {expected}/{})",
                sched.sdus
            )));
        }

        // Feed the sender.
        while next_id < sched.sdus {
            let payload = Bytes::from(vec![(next_id & 0xff) as u8; 32]);
            match sender.push(PacketId(next_id), payload) {
                Ok(()) => next_id += 1,
                Err(_) => break,
            }
        }

        // Fire due timers.
        if sender.poll_timeout().is_some_and(|d| d <= now) {
            sender.on_timeout(now);
        }
        if receiver.poll_timeout().is_some_and(|d| d <= now) {
            receiver.on_timeout(now);
        }

        // Sender transmissions → data link, with the monotone-numbering
        // and wire round-trip checks at the emission point.
        while let Some(frame) = sender.poll_transmit(now) {
            if let Frame::Info(ref info) = frame {
                if let Some(prev) = last_info_seq {
                    if info.seq <= prev {
                        return Err(violation(format!(
                            "wire numbering not monotone: {} after {prev}",
                            info.seq
                        )));
                    }
                }
                last_info_seq = Some(info.seq);
                tx_reference = tx_reference.max(info.seq);
                let encoded = wire::encode(&frame, modulus);
                match wire::decode(&encoded, receiver.highest_seen(), modulus) {
                    Ok(decoded) if decoded == frame => {}
                    other => {
                        return Err(violation(format!(
                            "bounded numbering violated: seq {} does not survive the \
                             wire against reference {} (decode: {other:?})",
                            info.seq,
                            receiver.highest_seen()
                        )));
                    }
                }
            }
            data_link.send(now, frame, sched, &mut rng);
        }

        // Receiver feedback → feedback link, round-tripped against the
        // sender's reference.
        while let Some(frame) = receiver.poll_transmit(now) {
            let encoded = wire::encode(&frame, modulus);
            match wire::decode(&encoded, tx_reference, modulus) {
                Ok(decoded) if decoded == frame => {}
                other => {
                    return Err(violation(format!(
                        "feedback frame does not survive the wire against \
                         reference {tx_reference} (decode: {other:?})"
                    )));
                }
            }
            feedback_link.send(now, frame, sched, &mut rng);
        }

        // Arrivals due now.
        while let Some((frame, status)) = data_link.pop_due(now) {
            receiver.handle_frame(now, frame, status);
        }
        while let Some((frame, status)) = feedback_link.pop_due(now) {
            sender.handle_frame(now, frame, status);
        }

        // Application delivery: resequenced, exactly-once, in order.
        while let Some(d) = receiver.poll_deliver(now) {
            for (pid, _payload) in reseq.offer(d.packet_id, d.payload) {
                if pid.0 != expected {
                    return Err(violation(format!(
                        "delivery order broken: released {} while expecting {expected}",
                        pid.0
                    )));
                }
                expected += 1;
            }
        }
        while sender.poll_event().is_some() {}
        while receiver.poll_event().is_some() {}

        // Terminal states.
        if expected == sched.sdus && sender.buffered() == 0 {
            let stats = sender.stats();
            return Ok(Outcome::Complete {
                steps,
                elapsed: now - Instant::ZERO,
                retransmissions: stats.retransmissions,
            });
        }
        if sender.state() == SenderState::Failed {
            if sched.is_adversarial() {
                return Ok(Outcome::LinkFailed {
                    delivered: expected,
                });
            }
            return Err(violation(
                "sender declared link failure on a clean channel".into(),
            ));
        }

        // Advance the clock to the next event.
        let mut next: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            next = match (next, c) {
                (None, c) => c,
                (Some(a), None) => Some(a),
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        };
        consider(sender.poll_timeout());
        consider(receiver.poll_timeout());
        consider(data_link.next_arrival());
        consider(feedback_link.next_arrival());
        match next {
            Some(t) => now = now.max(t),
            None => {
                return Err(violation(format!(
                    "deadlock: no pending event with {} of {} SDUs delivered",
                    expected, sched.sdus
                )));
            }
        }
    }
}

/// Aggregate result of a schedule sweep.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules that delivered everything.
    pub complete: u64,
    /// Schedules ending in a (legitimately) declared link failure.
    pub link_failures: u64,
    /// Invariant violations found.
    pub violations: Vec<Violation>,
    /// Total retransmissions across completed schedules.
    pub retransmissions: u64,
}

/// Run the standard sweep: schedules `0..count` via [`Schedule::derive`].
pub fn run_sweep(count: u64) -> Report {
    let mut report = Report::default();
    for index in 0..count {
        let sched = Schedule::derive(index);
        match run_schedule(&sched) {
            Ok(Outcome::Complete {
                retransmissions, ..
            }) => {
                report.complete += 1;
                report.retransmissions += retransmissions;
            }
            Ok(Outcome::LinkFailed { .. }) => report.link_failures += 1,
            Err(v) => report.violations.push(v),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_completes() {
        let sched = Schedule {
            seed: 7,
            sdus: 50,
            drop_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            corrupt_pct: 0,
            capacity: usize::MAX,
        };
        match run_schedule(&sched).expect("clean channel must hold invariants") {
            Outcome::Complete {
                retransmissions, ..
            } => assert_eq!(retransmissions, 0, "clean channel needs no retransmission"),
            other => panic!("clean channel did not complete: {other:?}"),
        }
    }

    #[test]
    fn lossy_channel_completes_with_retransmissions() {
        let sched = Schedule {
            seed: 42,
            sdus: 50,
            drop_pct: 20,
            dup_pct: 10,
            reorder_pct: 10,
            corrupt_pct: 10,
            capacity: usize::MAX,
        };
        match run_schedule(&sched).expect("adversary must not break invariants") {
            Outcome::Complete {
                retransmissions, ..
            } => assert!(retransmissions > 0, "20% loss must force retransmission"),
            Outcome::LinkFailed { .. } => {} // legitimate under this adversary
        }
    }

    #[test]
    fn derived_schedules_are_deterministic() {
        let a = Schedule::derive(123);
        let b = Schedule::derive(123);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.sdus, b.sdus);
        assert_eq!(a.drop_pct, b.drop_pct);
        assert_eq!(a.capacity, b.capacity);
    }
}
