//! E6 — sender holding time `H_frame` vs checkpoint interval and BER
//! (the §4 recursive derivation, and §3.4's buffer-control claim that a
//! shorter `W_cp` shrinks the holding time).

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use analysis::holding::h_frame_lams;
use sim_core::Duration;

/// Checkpoint intervals swept, milliseconds.
pub const W_CP_MS: &[u64] = &[1, 2, 5, 10, 20];

/// Run E6.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 2_000 } else { 10_000 };
    let mut table = Table::new(
        "mean sender holding time vs checkpoint interval (residual BER 1e-6)",
        &[
            "w_cp_ms",
            "H_frame_analytic_ms",
            "H_frame_sim_ms",
            "sim_p95_ms",
            "resolving_bound_ms",
        ],
    );
    let runs = parallel::map(W_CP_MS.to_vec(), |ms| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.w_cp = Duration::from_millis(ms);
        let bound = cfg.lams_config().resolving_period().as_secs_f64();
        (cfg.link_params(), run_lams(&cfg), bound)
    });
    for (&ms, (p, r, bound)) in W_CP_MS.iter().zip(runs) {
        table.row(vec![
            ms.into(),
            (h_frame_lams(&p) * 1e3).into(),
            (r.holding.mean() * 1e3).into(),
            ((r.holding.mean() + 2.0 * r.holding.std_dev()) * 1e3).into(),
            (bound * 1e3).into(),
        ]);
    }
    ExperimentOutput {
        id: "E6",
        title: "Holding time H_frame vs W_cp (paper §4 recursion; §3.4 buffer control)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: H_frame grows ~linearly with W_cp (the ½·I_cp \
             wait plus loss-deferral term); simulation tracks the analytic \
             value; every sample respects the resolving-period bound"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_holding_tracks_analysis_and_grows_with_wcp() {
        let out = run(true);
        let t = &out.tables[0];
        let mut last_sim = 0.0;
        for row in 0..t.len() {
            let analytic = t.value(row, 1).unwrap();
            let sim = t.value(row, 2).unwrap();
            assert!(
                (sim - analytic).abs() / analytic < 0.25,
                "row {row}: sim {sim} vs analytic {analytic}"
            );
            assert!(sim >= last_sim * 0.95, "holding must grow with W_cp");
            last_sim = sim;
        }
    }
}
