//! Full-duplex operation: data flowing in *both* directions at once
//! (paper assumption 2: "all links operate in a full-duplex mode").
//!
//! Each node hosts a sender (for its outgoing data) and a receiver (for
//! the incoming flow), and the two share the node's single laser
//! transmitter: the receiver's control frames (checkpoints, Enforced-
//! NAKs) compete with the sender's I-frames for airtime. Control frames
//! get priority — they are small, time-critical, and the paper's no-
//! piggyback rule (assumption 4) makes them unavoidable overhead on the
//! data path.
//!
//! This answers a question the paper's unidirectional analysis leaves
//! open: how much forward goodput does the reverse flow's checkpoint
//! stream cost? (Answer, measured in E15: a fraction of a percent at the
//! paper's parameters — checkpoints are ~40 bytes every `W_cp`.)

use crate::metrics::{Collector, RunReport};
use crate::node::{Driver, RxEndpoint, TxEndpoint};
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficGen;
use netsim::Machine;
use netsim::{NodeRole, SimBuilder};
use sim_core::SeedSplitter;

/// Reports for the two directions: `a_to_b` and `b_to_a`.
pub struct DuplexReport {
    /// Metrics of the A→B flow.
    pub a_to_b: RunReport,
    /// Metrics of the B→A flow.
    pub b_to_a: RunReport,
}

/// Drive a symmetric full-duplex scenario: both nodes offer
/// `cfg.n_packets` SDUs to each other under `cfg`'s channel conditions.
pub fn run_duplex<T, R>(
    cfg: &ScenarioConfig,
    mk_tx: impl Fn(usize) -> T,
    mk_rx: impl Fn(usize) -> R,
    protocol: &str,
) -> DuplexReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    // Node 0 = A, node 1 = B. txs[i] sends data FROM node i; rxs[i]
    // receives data AT node i. Link i carries node i's transmissions,
    // with the receiver registered first so its control frames win the
    // shared transmitter (checkpoint priority over I-frames). Both
    // endpoints listen on the incoming link — each ignores frames that
    // are not its own.
    let mut gens = (0..2).map(|i| {
        TrafficGen::new(
            cfg.pattern.clone(),
            cfg.n_packets,
            SeedSplitter::new(cfg.seed).stream(2 + i as u64),
        )
    });
    let (chan_a, chan_b) = cfg.build_channels();

    let mut b = SimBuilder::new(cfg.payload_bytes, cfg.deadline, cfg.sample_every);
    let na = b.node(NodeRole::Duplex);
    let nb = b.node(NodeRole::Duplex);
    let la = b.link(na, nb, chan_a, "fwd");
    let lb = b.link(nb, na, chan_b, "rev");
    let ra = b.rx(na, la, mk_rx(0));
    let ta = b.tx(na, la, mk_tx(0));
    let rb = b.rx(nb, lb, mk_rx(1));
    let tb = b.tx(nb, lb, mk_tx(1));
    b.listen(la, rb);
    b.listen(la, tb);
    b.listen(lb, ra);
    b.listen(lb, ta);
    let c0 = b.collector(Collector::new());
    let c1 = b.collector(Collector::new());
    b.source(gens.next().expect("gen a"), ta, c0);
    b.source(gens.next().expect("gen b"), tb, c1);
    b.deliver(ra, c1);
    b.deliver(rb, c0);
    b.sample(c0, ta, vec![ra]);
    b.sample(c1, tb, vec![rb]);
    b.holding(c0, ta);
    b.holding(c1, tb);

    let netsim::Outcome {
        txs,
        rxs,
        collectors,
        finished_at,
        deadline_hit,
        queue,
        wall_secs,
        ..
    } = b.build().expect("duplex wiring is valid").run();
    // Both directions ran on the one event queue; each report carries
    // the whole run's perf block.
    crate::metrics::perf_absorb(&queue, wall_secs);
    let finish = |col: Collector, i: usize| {
        col.finish(
            protocol,
            cfg.n_packets,
            finished_at,
            deadline_hit,
            txs[i].is_failed(),
            txs[i].transmissions(),
            txs[i].retransmissions(),
            cfg.t_f(),
            txs[i].extra_stats(),
            rxs[1 - i].extra_stats(),
        )
    };
    let stamp = |mut r: RunReport| {
        r.queue = queue;
        r.wall_secs = wall_secs;
        r
    };
    let mut it = collectors.into_iter();
    let a_to_b = stamp(finish(it.next().expect("col a"), 0));
    let b_to_a = stamp(finish(it.next().expect("col b"), 1));
    DuplexReport { a_to_b, b_to_a }
}

/// Symmetric full-duplex LAMS-DLC.
pub fn run_duplex_lams(cfg: &ScenarioConfig) -> DuplexReport {
    let lcfg = cfg.lams_config();
    run_duplex(
        cfg,
        |i| {
            // Trace labels are per *flow*, not per node: mk_tx(0) sends
            // the A→B data, and its peer receiver is mk_rx(1) at node B —
            // sharing the "a2b" prefix lets trace consumers pair them.
            let node = if i == 0 { "a2b.tx" } else { "b2a.tx" };
            Driver::new(
                lams_dlc::Sender::new(lcfg.clone()).with_trace(telemetry::global_handle(node)),
            )
        },
        |i| {
            let node = if i == 0 { "b2a.rx" } else { "a2b.rx" };
            Driver::new(
                lams_dlc::Receiver::new(lcfg.clone()).with_trace(telemetry::global_handle(node)),
            )
        },
        "lams-duplex",
    )
}

/// Symmetric full-duplex SR-HDLC.
pub fn run_duplex_sr(cfg: &ScenarioConfig) -> DuplexReport {
    let hcfg = cfg.hdlc_config();
    run_duplex(
        cfg,
        |i| {
            let node = if i == 0 { "a2b.tx" } else { "b2a.tx" };
            Driver::new(
                hdlc::SrSender::new(hcfg.clone()).with_trace(telemetry::global_handle(node)),
            )
        },
        |i| {
            let node = if i == 0 { "b2a.rx" } else { "a2b.rx" };
            Driver::new(
                hdlc::SrReceiver::new(hcfg.clone()).with_trace(telemetry::global_handle(node)),
            )
        },
        "sr-duplex",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Duration;

    fn cfg(n: u64, ber: f64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_default();
        c.n_packets = n;
        c.data_residual_ber = ber;
        c.ctrl_residual_ber = ber / 10.0;
        c.deadline = Duration::from_secs(120);
        c
    }

    #[test]
    fn duplex_both_directions_lossless() {
        let r = run_duplex_lams(&cfg(2_000, 1e-6));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
        assert_eq!(r.a_to_b.delivered_unique, 2_000);
        assert_eq!(r.b_to_a.delivered_unique, 2_000);
        assert!(!r.a_to_b.deadline_hit);
    }

    #[test]
    fn duplex_sr_also_lossless() {
        let r = run_duplex_sr(&cfg(1_500, 1e-6));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
    }

    #[test]
    fn directions_are_symmetric() {
        let r = run_duplex_lams(&cfg(3_000, 1e-6));
        let ea = r.a_to_b.efficiency();
        let eb = r.b_to_a.efficiency();
        assert!((ea - eb).abs() / ea < 0.05, "a→b {ea} vs b→a {eb}");
    }

    #[test]
    fn control_overhead_is_small() {
        // Duplex forward efficiency vs unidirectional: the reverse flow's
        // checkpoints steal only a sliver of airtime (~40 B per W_cp
        // against 300 Mbps).
        let c = cfg(5_000, 1e-6);
        let duplex = run_duplex_lams(&c);
        let uni = crate::scenario::run_lams(&c);
        let loss_frac = 1.0 - duplex.a_to_b.efficiency() / uni.efficiency();
        assert!(
            loss_frac < 0.05,
            "duplex cost too high: {:.1}% (duplex {}, uni {})",
            loss_frac * 100.0,
            duplex.a_to_b.efficiency(),
            uni.efficiency()
        );
    }

    #[test]
    fn duplex_under_errors_recovers_both_ways() {
        let r = run_duplex_lams(&cfg(3_000, 1e-5));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
        assert!(r.a_to_b.retransmissions > 0);
        assert!(r.b_to_a.retransmissions > 0);
    }
}
