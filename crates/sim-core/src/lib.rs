#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # sim-core
//!
//! Deterministic discrete-event simulation substrate for the LAMS-DLC
//! reproduction.
//!
//! The crate provides four things and nothing protocol-specific:
//!
//! * [`Instant`] / [`Duration`] — nanosecond virtual time;
//! * [`EventQueue`] — a deterministic calendar queue (FIFO among
//!   simultaneous events);
//! * [`SimRng`] / [`SeedSplitter`] — per-component seeded RNG streams, so
//!   protocols under comparison see *identical* channel error sequences
//!   (common random numbers);
//! * [`stats`] — streaming summaries, histograms, time-weighted averages
//!   and traces for experiment output.
//!
//! Everything downstream (channel models, the LAMS-DLC and HDLC state
//! machines, the experiment harness) is built on these primitives. The
//! design follows the sans-IO idiom: protocol code never owns a clock or a
//! socket; the simulator advances time and hands `now` in.

pub mod event_queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use event_queue::{EventId, EventQueue, QueueProfile, RunTimer};
pub use rng::{SeedSplitter, SimRng};
pub use time::{Duration, Instant};
