//! Deterministic random-number generation for simulations.
//!
//! Every stochastic component (channel error process, traffic arrivals,
//! failure injection) owns a [`SimRng`] derived from the scenario's master
//! seed via a stream id. Splitting by stream keeps components statistically
//! independent while guaranteeing that adding draws to one component never
//! perturbs another — essential when comparing protocols on *identical*
//! error sequences (common random numbers).

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// A seeded PRNG stream for one simulation component.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

/// Derives independent [`SimRng`] streams from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Create a splitter from the scenario master seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// Derive the RNG for the component identified by `stream`.
    ///
    /// Uses SplitMix64 over `master ^ f(stream)` so that nearby stream ids
    /// yield well-separated seeds.
    pub fn stream(&self, stream: u64) -> SimRng {
        SimRng::from_seed(splitmix64(
            self.master ^ splitmix64(stream ^ 0x9e37_79b9_7f4a_7c15),
        ))
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Construct directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// A Bernoulli trial: true with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Uniform float in [0, 1).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in [0, n). Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times). Returns 0 for non-positive means.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; 1 - u avoids ln(0).
        let u: f64 = self.inner.random();
        -mean * (1.0 - u).ln()
    }

    /// Geometric number of failures before the first success, success
    /// probability `p` in (0, 1]. Used for sampling "bits until next error"
    /// in the fast channel path.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric: p out of range: {p}");
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.inner.random();
        // floor(ln(1-u) / ln(1-p)); both logs negative.
        let k = f64::floor(f64::ln(1.0 - u) / f64::ln(1.0 - p));
        if k.is_finite() && k >= 0.0 {
            k as u64
        } else {
            0
        }
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SeedSplitter::new(42);
        let b = SeedSplitter::new(42);
        let mut ra = a.stream(7);
        let mut rb = b.stream(7);
        for _ in 0..100 {
            assert_eq!(ra.bits(), rb.bits());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let s = SeedSplitter::new(42);
        let mut r1 = s.stream(1);
        let mut r2 = s.stream(2);
        let same = (0..64).filter(|_| r1.bits() == r2.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_masters_diverge() {
        let mut r1 = SeedSplitter::new(1).stream(0);
        let mut r2 = SeedSplitter::new(2).stream(0);
        assert_ne!(
            (0..8).map(|_| r1.bits()).collect::<Vec<_>>(),
            (0..8).map(|_| r2.bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = SimRng::from_seed(123);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::from_seed(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn exponential_nonpositive_mean_is_zero() {
        let mut r = SimRng::from_seed(9);
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-3.0), 0.0);
    }

    #[test]
    fn geometric_mean() {
        // E[failures before success] = (1-p)/p.
        let p = 0.01;
        let mut r = SimRng::from_seed(77);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean={mean} expect={expect}"
        );
    }

    #[test]
    fn geometric_p_one() {
        let mut r = SimRng::from_seed(5);
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(1), 0);
    }
}
