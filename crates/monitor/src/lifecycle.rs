//! Per-frame lifecycle records: first send → NAKs → retransmits →
//! delivery → release.

use sim_core::Instant;
use telemetry::Json;

/// The complete history of one user frame on one link, reconstructed
/// from the trace: `Renumbered` events chain successive wire copies of
/// the same buffered SDU into a single lifecycle.
#[derive(Clone, Debug)]
pub struct FrameLifecycle {
    /// Link key (trace-label prefix, `""` for the point-to-point pair).
    pub link: &'static str,
    /// Wire sequence number of the first transmission.
    pub first_seq: u64,
    /// Wire sequence number of the copy that was finally released.
    pub final_seq: u64,
    /// First transmission instant.
    pub first_tx: Instant,
    /// NAKs recorded against any copy of the frame.
    pub naks: u32,
    /// Retransmissions (renumbered copies sent).
    pub retransmits: u32,
    /// First clean arrival at the receiver, if observed.
    pub delivered_at: Option<Instant>,
    /// Sender buffer release instant, if observed.
    pub released_at: Option<Instant>,
}

impl FrameLifecycle {
    /// Delivery latency: first send → first clean arrival, seconds.
    pub fn delivery_latency_s(&self) -> Option<f64> {
        self.delivered_at
            .map(|d| d.duration_since(self.first_tx).as_secs_f64())
    }

    /// Sender holding time: first send → buffer release, seconds.
    pub fn holding_s(&self) -> Option<f64> {
        self.released_at
            .map(|r| r.duration_since(self.first_tx).as_secs_f64())
    }

    /// Machine-readable form (one JSONL line in `trace-tools lifecycle`).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::obj([
            ("link", self.link.into()),
            ("first_seq", self.first_seq.into()),
            ("final_seq", self.final_seq.into()),
            ("first_tx_s", Json::Num(self.first_tx.as_secs_f64())),
            ("naks", u64::from(self.naks).into()),
            ("retransmits", u64::from(self.retransmits).into()),
            ("delivery_latency_s", opt(self.delivery_latency_s())),
            ("holding_s", opt(self.holding_s())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_derive_from_instants() {
        let lc = FrameLifecycle {
            link: "",
            first_seq: 7,
            final_seq: 9,
            first_tx: Instant::from_millis(10),
            naks: 1,
            retransmits: 1,
            delivered_at: Some(Instant::from_millis(25)),
            released_at: Some(Instant::from_millis(40)),
        };
        assert!((lc.delivery_latency_s().unwrap() - 0.015).abs() < 1e-12);
        assert!((lc.holding_s().unwrap() - 0.030).abs() < 1e-12);
        let j = lc.to_json();
        assert_eq!(j.get("final_seq").and_then(Json::as_f64), Some(9.0));
    }

    #[test]
    fn unfinished_lifecycle_serializes_nulls() {
        let lc = FrameLifecycle {
            link: "a2b",
            first_seq: 1,
            final_seq: 1,
            first_tx: Instant::ZERO,
            naks: 0,
            retransmits: 0,
            delivered_at: None,
            released_at: None,
        };
        assert_eq!(lc.delivery_latency_s(), None);
        assert_eq!(lc.to_json().get("holding_s"), Some(&Json::Null));
    }
}
