//! The parallel experiment runner must be a pure speed knob: the
//! `lams-dlc.repro/1` document produced at `--workers N` is byte-identical
//! to the serial one apart from measured wall-clock (the perf and
//! profile blocks).
//!
//! This is the common-random-numbers guarantee end-to-end: every
//! simulation derives all randomness from its config's seed, and the
//! runner merges results, perf accumulators, and trace records in
//! experiment order regardless of which worker ran what. Self-profiling
//! only reads the wall clock, so it rides the same exemption: a
//! profiled run must produce the same simulated results as an
//! unprofiled one, at any worker count.

use harness::{parallel, runner};
use telemetry::Json;

/// The wall-clock-bearing members a determinism comparison must ignore
/// (mirrors `check_repro.py --identical`'s strip list).
const WALL_CLOCK_KEYS: &[&str] = &["perf", "profile"];

/// Null out every `perf`/`profile` member (the fields carrying
/// wall-clock measurements).
fn strip_perf(json: Json) -> Json {
    match json {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| {
                    if WALL_CLOCK_KEYS.contains(&k.as_str()) {
                        (k, Json::Null)
                    } else {
                        (k, strip_perf(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_perf).collect()),
        other => other,
    }
}

fn report_at(workers: usize, ids: &[String], profiled: bool) -> (Json, Json) {
    parallel::set_workers(workers);
    let runs = runner::run_experiments_with(ids, true, profiled);
    let full = runner::report_json(&runs, true);
    parallel::set_workers(1);
    (strip_perf(full.clone()), full)
}

#[test]
fn worker_count_does_not_change_results() {
    // A cheap, representative subset: a single-flow sweep (e6), an
    // outage sweep (e9), and the relay topology (e13).
    let ids: Vec<String> = ["e6", "e9", "e13"].iter().map(|s| s.to_string()).collect();
    let (serial, serial_full) = report_at(1, &ids, false);
    let (par, _) = report_at(3, &ids, false);
    assert_eq!(
        serial.render(),
        par.render(),
        "parallel run changed results beyond perf blocks"
    );
    // The stripped comparison must actually have removed something —
    // guard against the schema silently renaming "perf".
    assert_ne!(
        serial.render(),
        serial_full.render(),
        "strip_perf found no perf blocks; schema changed?"
    );
}

#[test]
fn profiling_does_not_change_results() {
    // The same gate a serial-vs-parallel run passes, but for profiling
    // on vs off: fingerprints, audit verdicts, attribution — everything
    // but the stripped wall-clock blocks — must be byte-identical.
    let ids: Vec<String> = ["e6", "e9"].iter().map(|s| s.to_string()).collect();
    let (plain, _) = report_at(1, &ids, false);
    let (profiled, profiled_full) = report_at(1, &ids, true);
    assert_eq!(
        plain.render(),
        profiled.render(),
        "profiling changed simulated results"
    );
    // The profiled document genuinely carried a profile block.
    let exps = profiled_full
        .get("experiments")
        .and_then(Json::as_arr)
        .expect("experiments");
    assert!(
        exps.iter()
            .all(|e| e.get("profile").and_then(|p| p.get("spans")).is_some()),
        "profiled run reported no span trees"
    );
}

#[test]
fn profiled_run_passes_worker_determinism_gate() {
    // Profiling forces each experiment's *inner* fan-out serial (span
    // nesting needs one thread) but the outer experiment fan-out still
    // parallelizes — and must still merge deterministically.
    let ids: Vec<String> = ["e6", "e9", "e13"].iter().map(|s| s.to_string()).collect();
    let (serial, _) = report_at(1, &ids, true);
    let (par, _) = report_at(3, &ids, true);
    assert_eq!(
        serial.render(),
        par.render(),
        "profiled parallel run changed results beyond perf/profile blocks"
    );
}
