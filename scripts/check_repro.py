#!/usr/bin/env python3
"""Validate `repro --json` output and its worker-count determinism.

Usage:
    check_repro.py report.json [report_parallel.json]
                   [--identical FILE_A FILE_B]...
                   [--bench BENCH.json]...
                   [--attribution OFFLINE.tsv]...
                   [--profile PROFILE.json]...
                   [--live STATS.jsonl]...
                   [--mcheck MCHECK.json]...
                   [--timeline TIMELINE.json]...
                   [--timeline-identical FILE_A FILE_B]...

With one positional argument: validate the `lams-dlc.repro/1` schema
(top-level fields, per-experiment structure, perf blocks, live-monitor
metrics blocks, and latency-attribution blocks — phases must partition
the measured latency exactly, with zero phase-sum audit failures and
zero resolution-bound violations).

With two positional arguments: additionally require the two documents to
be identical once every `perf` and `profile` block (the wall-clock-
bearing fields) is nulled out and every `shard_profile` block is reduced
to its shard-count-invariant core (the protocol event total) — the
parallel runner (`--workers`) and the sharded simulation runtime
(`--shards`) must both be pure speed knobs, and self-profiling must
never perturb simulated results.

Each `--profile FILE` must be a valid `lams-dlc.profile/1` document (as
written by `repro --profile`): per experiment, every span node must
carry integer-nanosecond counters with exact tree consistency (each
child's total nests inside its parent's, `self_ns` equals
`total_ns - sum(children.total_ns)` with no rounding) and the top-level
spans must cover at least 90% of the experiment's measured wall clock.

Each `--identical A B` pair must be byte-identical files; used for the
`--trace`/`--metrics` JSONL outputs of serial vs parallel runs.

Each `--bench FILE` must be a valid `lams-dlc.bench/1` document (as
written by `bench_suite` or `scripts/bench.py`): micro-kernel rows with
positive timings, one entry per experiment id with a well-formed queue
profile, and a quick-all total that actually popped events.

Each `--attribution FILE` is a `trace-tools attribution` output
(`<id>\\t<json>` lines from replaying the run's --trace file offline):
every line must be byte-identical to the corresponding experiment's
`attribution` block in the report (ids compared case-insensitively),
and every attributed experiment must appear — the offline replay and
the live monitor must reconstruct the same causal story.

Each `--live FILE` must be a `lams-dlc.live/1` JSONL stream (as written
by `lams-dlc-io --stats`): every snapshot well-formed with one constant
clock domain, cumulative counters monotone non-decreasing across
snapshots, zero audit findings throughout, and exactly the last
document marked final.

Each `--mcheck FILE` must be a `lams-dlc.mcheck/1` sweep document (as
written by `model-check --json`): zero violations, every schedule
accounted for, and nonzero coverage for every adversary knob — a sweep
whose coverage shows a zero proved nothing about that knob.

Each `--timeline FILE` must be a `lams-dlc.timeline/1` Chrome
trace-event document (as written by `repro --timeline` or `trace-tools
timeline`): metadata naming every track, superstep spans non-overlapping
per (pid, tid) track, complete deterministic args on every span,
grant-horizon counters monotone non-decreasing per shard series — and,
when a report is given, the span event totals must equal the report's
`shard_profile` event accounting.

Each `--timeline-identical A B` pair must be identical timeline
documents once the `ts`/`dur` members (the only wall-clock-bearing
fields) are stripped from every trace event — a live export and its
offline `trace-tools timeline` replay, or two repeated runs at the same
shard count, must agree on every deterministic field.
"""

import json
import sys

EXPECTED_IDS = [f"E{i}" for i in range(1, 19)]

METRICS_KEYS = ("runs", "frames", "delivered", "naks", "retransmissions",
                "max_tx_outstanding", "audit_findings", "delivery_latency")
LATENCY_KEYS = ("count", "p50_s", "p99_s")

# The causal latency-attribution block (monitor::AttributionAgg). The
# eight phases partition each delivered SDU's sender-to-release latency,
# so their totals must sum exactly to latency_total_ns — in integer
# nanoseconds, no tolerance.
ATTR_KEYS = ("sdus", "clean", "errored", "incomplete", "audit_failures",
             "latency_total_ns", "max_nak_repeats", "phases", "reseq_hold",
             "resolution")
PHASE_NAMES = ("first_flight", "nak_wait", "nak_loss", "control_flight",
               "stop_go", "retx_wait", "retx_flight", "enforced")
PHASE_AGG_KEYS = ("count", "total_ns", "max_ns")
RESOLUTION_KEYS = ("cycles", "max_ns", "bound_ns", "violations")


def fail(msg):
    print(f"check_repro: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate_metrics(metrics, exp_id, path):
    """The live monitor's per-experiment block: present for every LAMS
    experiment, null only when no audited link ran (analysis-only)."""
    if metrics is None:
        return
    for key in METRICS_KEYS:
        if key not in metrics:
            fail(f"{path}: {exp_id} metrics block missing '{key}'")
    if metrics["audit_findings"] != 0:
        fail(f"{path}: {exp_id} has {metrics['audit_findings']} "
             f"protocol audit finding(s)")
    lat = metrics["delivery_latency"]
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{path}: {exp_id} delivery_latency missing '{key}'")
    if metrics["frames"] > 0 and lat["count"] == 0:
        fail(f"{path}: {exp_id} released frames but recorded no latencies")


def validate_phase_agg(agg, where, path):
    for key in PHASE_AGG_KEYS:
        if not isinstance(agg.get(key), int):
            fail(f"{path}: {where} field '{key}' must be an integer")
    if agg["max_ns"] > agg["total_ns"]:
        fail(f"{path}: {where} max_ns exceeds total_ns")
    if agg["count"] == 0 and agg["total_ns"] != 0:
        fail(f"{path}: {where} accumulated time with zero samples")


def validate_attribution(attr, exp_id, path):
    """The latency-attribution block: present for every LAMS experiment,
    null only when no audited link ran. Phase totals must partition the
    measured latency exactly, and the protocol's worst resolution cycle
    must respect the analytic resolving period."""
    if attr is None:
        return
    for key in ATTR_KEYS:
        if key not in attr:
            fail(f"{path}: {exp_id} attribution block missing '{key}'")
    for key in ("sdus", "clean", "errored", "incomplete", "audit_failures",
                "latency_total_ns", "max_nak_repeats"):
        if not isinstance(attr[key], int):
            fail(f"{path}: {exp_id} attribution '{key}' must be an integer")
    if attr["sdus"] != attr["clean"] + attr["errored"]:
        fail(f"{path}: {exp_id} attribution sdus != clean + errored")
    if attr["audit_failures"] != 0:
        fail(f"{path}: {exp_id} has {attr['audit_failures']} SDU(s) whose "
             f"phase sums disagree with measured latency")
    phases = attr["phases"]
    if tuple(phases) != PHASE_NAMES:
        fail(f"{path}: {exp_id} attribution phases {tuple(phases)} != "
             f"{PHASE_NAMES}")
    for name, agg in phases.items():
        validate_phase_agg(agg, f"{exp_id} phase '{name}'", path)
    validate_phase_agg(attr["reseq_hold"], f"{exp_id} reseq_hold", path)
    total = sum(agg["total_ns"] for agg in phases.values())
    if total != attr["latency_total_ns"]:
        fail(f"{path}: {exp_id} phase totals sum to {total} ns but measured "
             f"latency is {attr['latency_total_ns']} ns — the attribution "
             f"does not partition the latency")
    res = attr["resolution"]
    for key in RESOLUTION_KEYS:
        if not isinstance(res.get(key), int):
            fail(f"{path}: {exp_id} resolution field '{key}' must be "
                 f"an integer")
    if res["violations"] != 0:
        fail(f"{path}: {exp_id} has {res['violations']} NAK cycle(s) "
             f"exceeding the analytic resolving period")
    if res["cycles"] > 0 and res["max_ns"] > res["bound_ns"]:
        fail(f"{path}: {exp_id} worst resolution cycle {res['max_ns']} ns "
             f"exceeds bound {res['bound_ns']} ns yet reported no "
             f"violations")


SHARD_PROFILE_COUNT_KEYS = ("shards", "supersteps", "windows",
                            "null_windows", "events", "inbound", "outbound",
                            "granted_ns", "available_ns")
SHARD_PROFILE_KEYS = SHARD_PROFILE_COUNT_KEYS + (
    "lookahead_utilization", "critical_cuts", "efficiency", "imbalance",
    "busy_ns", "blocked_ns", "wall_secs")


def validate_shard_profile(sp, exp_id, path):
    """The sharded runtime's superstep accounting: present for the
    sharded experiment family, null elsewhere. Counts are deterministic;
    busy/blocked/wall (and the derived efficiency/imbalance) read the
    wall clock."""
    for key in SHARD_PROFILE_KEYS:
        if key not in sp:
            fail(f"{path}: {exp_id} shard_profile missing '{key}'")
    for key in SHARD_PROFILE_COUNT_KEYS:
        if not isinstance(sp[key], int) or sp[key] < 0:
            fail(f"{path}: {exp_id} shard_profile '{key}' must be a "
                 f"non-negative integer")
    if sp["shards"] < 1 or sp["windows"] < 1 or sp["events"] < 1:
        fail(f"{path}: {exp_id} shard_profile recorded no work: {sp}")
    if sp["null_windows"] > sp["windows"]:
        fail(f"{path}: {exp_id} shard_profile null_windows exceeds windows")
    if not 0.0 < sp["efficiency"]:
        fail(f"{path}: {exp_id} shard_profile efficiency must be positive")
    if sp["imbalance"] < 1.0 - 1e-9:
        fail(f"{path}: {exp_id} shard_profile imbalance below 1.0")
    if not 0.0 <= sp["lookahead_utilization"] <= 1.0 + 1e-9:
        fail(f"{path}: {exp_id} shard_profile lookahead_utilization "
             f"outside [0, 1]")
    cuts = sp["critical_cuts"]
    if not isinstance(cuts, dict):
        fail(f"{path}: {exp_id} shard_profile critical_cuts must be a map")
    for link, count in cuts.items():
        if not link.startswith("link") or not isinstance(count, int) \
                or count < 1:
            fail(f"{path}: {exp_id} critical_cuts entry "
                 f"{link!r}: {count!r} malformed")
    for key in ("busy_ns", "blocked_ns"):
        vec = sp[key]
        if not isinstance(vec, list) or len(vec) != sp["shards"]:
            fail(f"{path}: {exp_id} shard_profile '{key}' must list one "
                 f"entry per shard")


def validate(doc, path):
    if doc.get("schema") != "lams-dlc.repro/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'lams-dlc.repro/1'")
    if not isinstance(doc.get("quick"), bool):
        fail(f"{path}: 'quick' must be a bool")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    ids = []
    audited = 0
    for e in exps:
        for key in ("id", "title", "tables", "notes"):
            if key not in e:
                fail(f"{path}: experiment missing '{key}': {e.get('id', '?')}")
        ids.append(e["id"])
        if "metrics" not in e:
            fail(f"{path}: {e['id']} missing 'metrics' block")
        validate_metrics(e["metrics"], e["id"], path)
        if "attribution" not in e:
            fail(f"{path}: {e['id']} missing 'attribution' block")
        validate_attribution(e["attribution"], e["id"], path)
        if (e["metrics"] is None) != (e["attribution"] is None):
            fail(f"{path}: {e['id']} metrics and attribution disagree on "
                 f"whether an audited link ran")
        if e["metrics"] is not None:
            audited += 1
        if "profile" not in e:
            fail(f"{path}: {e['id']} missing 'profile' block")
        if e["profile"] is not None:
            validate_profile_block(e["profile"], e["id"], path)
        if "shard_profile" not in e:
            fail(f"{path}: {e['id']} missing 'shard_profile' block")
        if e["shard_profile"] is not None:
            validate_shard_profile(e["shard_profile"], e["id"], path)
        perf = e.get("perf")
        if perf is None:
            continue  # an experiment with no simulations (analysis-only)
        for key in ("scheduled", "popped", "peak_depth", "wall_secs",
                    "events_per_sec", "runs"):
            if key not in perf:
                fail(f"{path}: {e['id']} perf block missing '{key}'")
        if perf["popped"] <= 0:
            fail(f"{path}: {e['id']} perf block popped no events")
    if ids != EXPECTED_IDS:
        fail(f"{path}: experiment ids {ids} != {EXPECTED_IDS}")
    if audited == 0:
        fail(f"{path}: no experiment carries live-monitor metrics")
    return doc


BENCH_EXPECTED_IDS = [f"e{i}" for i in range(1, 19)]

MICRO_KEYS = ("name", "iters", "ops", "wall_secs", "ns_per_op",
              "ops_per_sec")
QUEUE_KEYS = ("scheduled", "popped", "cancelled", "peak_depth",
              "horizon_s")


def validate_bench(doc, path):
    """The `lams-dlc.bench/1` schema from bench_suite / bench.py."""
    if doc.get("schema") != "lams-dlc.bench/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want 'lams-dlc.bench/1'")
    micro = doc.get("micro")
    if not isinstance(micro, list) or not micro:
        fail(f"{path}: 'micro' must be a non-empty array")
    names = []
    for m in micro:
        for key in MICRO_KEYS:
            if key not in m:
                fail(f"{path}: micro kernel missing '{key}': "
                     f"{m.get('name', '?')}")
        names.append(m["name"])
        if m["ops"] < m["iters"] or m["wall_secs"] < 0:
            fail(f"{path}: micro kernel {m['name']} has nonsensical "
                 f"ops/wall fields")
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate micro kernel names: {names}")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    ids = [e.get("id") for e in exps]
    if ids != BENCH_EXPECTED_IDS:
        fail(f"{path}: experiment ids {ids} != {BENCH_EXPECTED_IDS}")
    for e in exps:
        for key in ("runs", "wall_secs", "events_per_sec", "queue"):
            if key not in e:
                fail(f"{path}: {e['id']} missing '{key}'")
        q = e["queue"]
        if q is None:
            continue  # analysis-only experiment, no simulations
        for key in QUEUE_KEYS:
            if key not in q:
                fail(f"{path}: {e['id']} queue profile missing '{key}'")
        if q["popped"] <= 0 or e["events_per_sec"] <= 0:
            fail(f"{path}: {e['id']} ran simulations but popped nothing")
    # The shard-scaling sweep: optional (older baselines predate it;
    # --skip-shards omits it), but when present each point must be
    # well-formed and the shard counts strictly increasing.
    shards = doc.get("shards")
    if shards is not None and shards != []:
        if not isinstance(shards, list):
            fail(f"{path}: 'shards' must be an array")
        prev = 0
        for p in shards:
            for key in ("shards", "wall_secs", "events_per_sec", "popped"):
                if key not in p:
                    fail(f"{path}: shard sweep point missing '{key}': {p}")
            if p["shards"] <= prev:
                fail(f"{path}: shard counts must be strictly increasing, "
                     f"got {p['shards']} after {prev}")
            prev = p["shards"]
            if p["popped"] <= 0 or p["events_per_sec"] <= 0:
                fail(f"{path}: shard sweep at {p['shards']} shard(s) "
                     f"popped no events")
            # Efficiency/imbalance arrived with the superstep accounting;
            # older committed baselines legitimately lack them.
            if "efficiency" in p and not 0 < p["efficiency"] <= 1 + 1e-9:
                fail(f"{path}: shard sweep at {p['shards']} shard(s) has "
                     f"efficiency {p['efficiency']} outside (0, 1]")
            if "imbalance" in p and p["imbalance"] < 1 - 1e-9:
                fail(f"{path}: shard sweep at {p['shards']} shard(s) has "
                     f"imbalance {p['imbalance']} below 1")
    total = doc.get("total")
    if not isinstance(total, dict):
        fail(f"{path}: missing 'total' block")
    for key in ("runs", "wall_secs", "events_per_sec", "popped"):
        if key not in total:
            fail(f"{path}: total block missing '{key}'")
    if total["popped"] <= 0 or total["events_per_sec"] <= 0:
        fail(f"{path}: quick-all total popped no events")
    # The suite-wide profiled pass: optional (older baselines predate
    # it; --skip-profile omits it), but when present it must be a
    # consistent span tree covering its own wall clock.
    if doc.get("profile") is not None:
        validate_profile_block(doc["profile"], "bench profile", path)


# Span-tree validation for the self-profiling output. Shared between
# the standalone `lams-dlc.profile/1` document (--profile) and the
# profile blocks embedded in repro reports and bench documents.

SPAN_KEYS = ("name", "count", "total_ns", "self_ns", "children")
PROFILE_KEYS = ("wall_ns", "counters", "queue_depth", "alloc", "spans")
PROFILE_COUNTERS = ("profile.spans.dropped", "profile.spans.truncated")
MIN_SPAN_COVERAGE = 0.90


def validate_span(span, where, path):
    """One span node: integer ns, children nested inside the parent,
    self time exactly total minus the children's totals."""
    for key in SPAN_KEYS:
        if key not in span:
            fail(f"{path}: {where} span missing '{key}'")
    name = span["name"]
    here = f"{where};{name}"
    for key in ("count", "total_ns", "self_ns"):
        if not isinstance(span[key], int) or span[key] < 0:
            fail(f"{path}: {here} '{key}' must be a non-negative integer")
    if span["count"] == 0:
        fail(f"{path}: {here} recorded no calls")
    child_total = 0
    for child in span["children"]:
        validate_span(child, here, path)
        if child["total_ns"] > span["total_ns"]:
            fail(f"{path}: {here};{child['name']} total "
                 f"{child['total_ns']} ns exceeds its parent's "
                 f"{span['total_ns']} ns")
        child_total += child["total_ns"]
    if span["self_ns"] != span["total_ns"] - child_total:
        fail(f"{path}: {here} self_ns {span['self_ns']} != total "
             f"{span['total_ns']} - children {child_total} — the tree "
             f"does not partition its wall clock")


def validate_profile_block(block, exp_id, path, check_coverage=True):
    """One experiment's (or the bench suite's) profile block."""
    for key in PROFILE_KEYS:
        if key not in block:
            fail(f"{path}: {exp_id} profile block missing '{key}'")
    if not isinstance(block["wall_ns"], int) or block["wall_ns"] <= 0:
        fail(f"{path}: {exp_id} wall_ns must be a positive integer")
    counters = block["counters"]
    for name in PROFILE_COUNTERS:
        if not isinstance(counters.get(name), int) or counters[name] < 0:
            fail(f"{path}: {exp_id} counter '{name}' must be a "
                 f"non-negative integer")
    if counters["profile.spans.dropped"] < counters["profile.spans.truncated"]:
        fail(f"{path}: {exp_id} dropped < truncated — truncated enters "
             f"are a subset of dropped ones")
    depth = block["queue_depth"]
    for key in ("samples", "sum", "max", "mean"):
        if key not in depth:
            fail(f"{path}: {exp_id} queue_depth missing '{key}'")
    alloc = block["alloc"]
    if alloc is not None:
        for key in ("allocs", "bytes"):
            if not isinstance(alloc.get(key), int) or alloc[key] < 0:
                fail(f"{path}: {exp_id} alloc '{key}' must be a "
                     f"non-negative integer")
    spans = block["spans"]
    if not isinstance(spans, list) or not spans:
        fail(f"{path}: {exp_id} recorded no spans")
    for span in spans:
        validate_span(span, exp_id, path)
    if check_coverage:
        covered = sum(s["total_ns"] for s in spans)
        if covered < MIN_SPAN_COVERAGE * block["wall_ns"]:
            fail(f"{path}: {exp_id} top-level spans cover {covered} of "
                 f"{block['wall_ns']} wall ns "
                 f"({100 * covered / block['wall_ns']:.1f}%), below the "
                 f"{100 * MIN_SPAN_COVERAGE:.0f}% floor")


def validate_profile(doc, path):
    """The standalone `lams-dlc.profile/1` document from
    `repro --profile`."""
    if doc.get("schema") != "lams-dlc.profile/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want 'lams-dlc.profile/1'")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    for e in exps:
        if "id" not in e:
            fail(f"{path}: profiled experiment missing 'id'")
        validate_profile_block(e, e["id"], path)


WALL_CLOCK_KEYS = ("perf", "profile")


def strip_perf(node):
    """Null out the wall-clock-bearing blocks (perf, profile) and reduce
    each shard_profile to its shard-count-invariant core (the protocol
    event total) so the rest of the document can be compared for
    determinism. Superstep shapes, grants and critical cuts legitimately
    depend on the cut, but the committed event set never does."""
    if isinstance(node, dict):
        out = {}
        for k, v in node.items():
            if k in WALL_CLOCK_KEYS:
                out[k] = None
            elif k == "shard_profile":
                out[k] = None if v is None else {"events": v.get("events")}
            else:
                out[k] = strip_perf(v)
        return out
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


# --- timeline (`lams-dlc.timeline/1`) validation ---------------------

TIMELINE_SCHEMA = "lams-dlc.timeline/1"
TIMELINE_SPAN_ARGS = ("round", "shard", "grant_ns", "cut_bound",
                      "critical_link", "events", "inbound", "outbound",
                      "queue_depth")
TIMELINE_COUNTERS = ("events", "queue_depth", "grant_horizon_s")


def check_timeline(path, report_doc, report_path):
    """One Chrome trace-event timeline document: schema, track metadata,
    non-overlapping superstep spans per track, monotone grant-horizon
    counters, and (when a report rides along) span event totals matching
    the report's shard_profile accounting."""
    doc = load(path)
    if doc.get("schema") != TIMELINE_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want {TIMELINE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")
    named_pids, named_tids = set(), set()
    tracks = {}    # (pid, tid) -> [(ts, dur, index)]
    horizons = {}  # (pid, series) -> [(ts, index, value)]
    total_events = 0
    for n, ev in enumerate(events):
        where = f"{path}: traceEvents[{n}]"
        ph = ev.get("ph")
        if ph == "M":
            name = ev.get("name")
            if name == "process_name":
                named_pids.add(ev.get("pid"))
            elif name == "thread_name":
                named_tids.add((ev.get("pid"), ev.get("tid")))
            else:
                fail(f"{where}: unknown metadata event {name!r}")
            if not isinstance((ev.get("args") or {}).get("name"), str):
                fail(f"{where}: metadata without an args.name label")
            continue
        if not isinstance(ev.get("pid"), int) or \
                not isinstance(ev.get("ts"), (int, float)):
            fail(f"{where}: missing pid/ts")
        if ph == "X":
            if ev.get("name") != "superstep":
                fail(f"{where}: unexpected span {ev.get('name')!r}")
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"{where}: span without a non-negative dur")
            args = ev.get("args") or {}
            for key in TIMELINE_SPAN_ARGS:
                if key not in args:
                    fail(f"{where}: span args missing '{key}'")
            if args["cut_bound"] not in (True, False):
                fail(f"{where}: cut_bound must be a bool")
            tracks.setdefault((ev["pid"], ev.get("tid")), []).append(
                (ev["ts"], ev["dur"], n))
            total_events += args["events"]
        elif ph == "C":
            if ev.get("name") not in TIMELINE_COUNTERS:
                fail(f"{where}: unknown counter {ev.get('name')!r}")
            args = ev.get("args") or {}
            if len(args) != 1:
                fail(f"{where}: counter must carry exactly one series")
            (series, value), = args.items()
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"{where}: counter value must be non-negative")
            if ev["name"] == "grant_horizon_s":
                horizons.setdefault((ev["pid"], series), []).append(
                    (ev["ts"], n, value))
        else:
            fail(f"{where}: unknown ph {ph!r}")
    if not tracks:
        fail(f"{path}: no superstep spans")
    for (pid, tid), spans in tracks.items():
        if pid not in named_pids or (pid, tid) not in named_tids:
            fail(f"{path}: track pid={pid} tid={tid} has spans but no "
                 f"metadata name")
        end = None
        for ts, dur, n in sorted(spans):
            if end is not None and ts < end:
                fail(f"{path}: traceEvents[{n}]: span at ts={ts} overlaps "
                     f"the previous span on track pid={pid} tid={tid} "
                     f"(ends at {end})")
            end = ts + dur
    for (pid, series), points in horizons.items():
        prev = None
        for ts, n, value in sorted(points):
            if prev is not None and value < prev:
                fail(f"{path}: traceEvents[{n}]: grant_horizon_s went "
                     f"backwards on pid={pid} {series} "
                     f"({prev} -> {value}) — grants must advance")
            prev = value
    if report_doc is not None:
        want = sum(e["shard_profile"]["events"]
                   for e in report_doc["experiments"]
                   if e.get("shard_profile"))
        if total_events != want:
            fail(f"{path}: timeline spans account {total_events} event(s) "
                 f"but {report_path} shard_profile blocks account {want}")


def strip_timeline_wall(doc, path):
    """Drop the ts/dur members (the only wall-clock-bearing fields) from
    every trace event."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' must be an array")
    return {**doc,
            "traceEvents": [
                {k: v for k, v in ev.items() if k not in ("ts", "dur")}
                for ev in events]}


def check_timeline_identical(a, b):
    da = strip_timeline_wall(load(a), a)
    db = strip_timeline_wall(load(b), b)
    if da != db:
        fail(f"{a} and {b} differ beyond ts/dur: the timeline's "
             f"deterministic fields are not reproducible")


def check_attribution_replay(tsv_path, doc, report_path):
    """Every `trace-tools attribution` line must be byte-identical to the
    report's attribution block for that experiment: the offline replay of
    the trace stream and the live monitor must tell the same story."""
    # trace-tools labels experiments with the lowercase run ids; the
    # report uses the paper's uppercase artifact ids.
    blocks = {e["id"].lower(): e["attribution"]
              for e in doc["experiments"]
              if e.get("attribution") is not None}
    try:
        with open(tsv_path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(str(e))
    if not lines:
        fail(f"{tsv_path}: empty attribution replay")
    seen = set()
    for n, line in enumerate(lines, 1):
        if "\t" not in line:
            fail(f"{tsv_path}:{n}: not an '<id>\\t<json>' line")
        exp_id, offline = line.split("\t", 1)
        key = exp_id.lower()
        if key not in blocks:
            fail(f"{tsv_path}:{n}: {exp_id} has no attribution block "
                 f"in {report_path}")
        online = json.dumps(blocks[key], separators=(",", ":"))
        if offline != online:
            fail(f"{tsv_path}:{n}: offline attribution for {exp_id} is not "
                 f"byte-identical to the report block\n  offline: "
                 f"{offline}\n   online: {online}")
        seen.add(key)
    missing = sorted(set(blocks) - seen)
    if missing:
        fail(f"{tsv_path}: no offline attribution for {', '.join(missing)}")


# The live-host stats stream (`lams-dlc-io --stats`). Counters here are
# cumulative, so later snapshots can never show less than earlier ones.
LIVE_COUNTERS = ("io.inject.drops", "io.inject.corruptions",
                 "io.tx.datagrams", "io.rx.feedback")
LIVE_LINK_KEYS = ("frames", "delivered", "naks", "retransmissions",
                  "max_outstanding")
LIVE_SERIES_KEYS = ("t0_s", "t1_s", "tx", "retx", "delivered", "naks",
                    "releases", "outstanding_hwm")


def validate_live_doc(doc, where, path):
    """One `lams-dlc.live/1` snapshot in isolation."""
    if doc.get("schema") != "lams-dlc.live/1":
        fail(f"{path}:{where}: schema is {doc.get('schema')!r}, "
             f"want 'lams-dlc.live/1'")
    if doc.get("clock_domain") not in ("sim", "wall"):
        fail(f"{path}:{where}: clock_domain is "
             f"{doc.get('clock_domain')!r}, want 'sim' or 'wall'")
    if not isinstance(doc.get("final"), bool):
        fail(f"{path}:{where}: 'final' must be a bool")
    if not isinstance(doc.get("elapsed_s"), (int, float)) or \
            doc["elapsed_s"] < 0:
        fail(f"{path}:{where}: 'elapsed_s' must be a non-negative number")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}:{where}: missing 'counters' block")
    for name in LIVE_COUNTERS:
        if not isinstance(counters.get(name), int) or counters[name] < 0:
            fail(f"{path}:{where}: counter '{name}' must be a "
                 f"non-negative integer")
    progress = doc.get("progress")
    for key in ("sdus", "delivered"):
        if not isinstance(progress.get(key) if isinstance(progress, dict)
                          else None, int):
            fail(f"{path}:{where}: progress '{key}' must be an integer")
    if progress["delivered"] > progress["sdus"]:
        fail(f"{path}:{where}: delivered {progress['delivered']} exceeds "
             f"sdus {progress['sdus']}")
    audit = doc.get("audit")
    for key in ("findings", "records"):
        if not isinstance(audit.get(key) if isinstance(audit, dict)
                          else None, int):
            fail(f"{path}:{where}: audit '{key}' must be an integer")
    if audit["findings"] != 0:
        fail(f"{path}:{where}: live audit reported {audit['findings']} "
             f"finding(s)")
    link = doc.get("link")
    for key in LIVE_LINK_KEYS:
        if not isinstance(link.get(key) if isinstance(link, dict)
                          else None, int):
            fail(f"{path}:{where}: link '{key}' must be an integer")
    lat = doc.get("delivery_latency")
    if not isinstance(lat, dict) or not isinstance(lat.get("count"), int):
        fail(f"{path}:{where}: missing delivery_latency block")
    if lat["count"] > 0 and not isinstance(lat.get("p50_s"), (int, float)):
        fail(f"{path}:{where}: {lat['count']} latencies but no p50_s")
    series = doc.get("series")
    if not isinstance(series, list):
        fail(f"{path}:{where}: 'series' must be an array")
    for n, w in enumerate(series):
        for key in LIVE_SERIES_KEYS:
            if key not in w:
                fail(f"{path}:{where}: series window {n} missing '{key}'")
        if not w["t0_s"] < w["t1_s"]:
            fail(f"{path}:{where}: series window {n} has t0_s "
                 f"{w['t0_s']} >= t1_s {w['t1_s']}")
        for key in ("tx", "retx", "delivered", "naks", "releases"):
            if not isinstance(w[key], int) or w[key] < 0:
                fail(f"{path}:{where}: series window {n} '{key}' must be "
                     f"a non-negative integer")


def check_live(path):
    """A whole `--stats` stream: per-line validity plus the cross-line
    invariants (constant domain, monotone cumulative numbers, exactly
    one final document, at the end)."""
    try:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(str(e))
    if not lines:
        fail(f"{path}: empty stats stream")
    docs = []
    for n, line in enumerate(lines, 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{n}: {e}")
        validate_live_doc(doc, n, path)
        docs.append(doc)
    domains = {d["clock_domain"] for d in docs}
    if len(domains) != 1:
        fail(f"{path}: clock_domain changed mid-stream: {sorted(domains)}")
    finals = [n for n, d in enumerate(docs, 1) if d["final"]]
    if finals != [len(docs)]:
        fail(f"{path}: want exactly the last document final, "
             f"got final at line(s) {finals} of {len(docs)}")
    monotone = [("elapsed_s", lambda d: d["elapsed_s"]),
                ("progress.delivered", lambda d: d["progress"]["delivered"]),
                ("audit.records", lambda d: d["audit"]["records"])]
    monotone += [(f"counters[{name}]",
                  lambda d, name=name: d["counters"][name])
                 for name in LIVE_COUNTERS]
    for prev_n, (prev, cur) in enumerate(zip(docs, docs[1:]), 1):
        for label, get in monotone:
            if get(cur) < get(prev):
                fail(f"{path}:{prev_n + 1}: {label} went backwards "
                     f"({get(prev)} -> {get(cur)}) — cumulative numbers "
                     f"must be monotone")
    final = docs[-1]
    if final["progress"]["delivered"] != final["progress"]["sdus"]:
        fail(f"{path}: final document delivered "
             f"{final['progress']['delivered']} of "
             f"{final['progress']['sdus']} SDUs")


# The model-check sweep document. Every adversary knob must have fired:
# a sweep that never dropped (or never corrupted, ...) a frame proved
# nothing about the protocol's behaviour under that adversary.
MCHECK_KNOBS = ("drops", "dups", "reorders", "corruptions",
                "capacity_losses")
MCHECK_MACHINERY = ("checkpoints", "retransmissions")


def check_mcheck(doc, path):
    if doc.get("schema") != "lams-dlc.mcheck/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want 'lams-dlc.mcheck/1'")
    for key in ("schedules", "complete", "link_failures", "violations",
                "retransmissions"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"{path}: '{key}' must be a non-negative integer")
    if doc["violations"] != 0:
        fail(f"{path}: sweep found {doc['violations']} invariant "
             f"violation(s)")
    if doc["complete"] + doc["link_failures"] != doc["schedules"]:
        fail(f"{path}: complete {doc['complete']} + link_failures "
             f"{doc['link_failures']} != schedules {doc['schedules']}")
    if doc["schedules"] == 0:
        fail(f"{path}: sweep ran no schedules")
    cov = doc.get("coverage")
    if not isinstance(cov, dict):
        fail(f"{path}: missing 'coverage' block")
    for key in MCHECK_KNOBS + MCHECK_MACHINERY + ("steps",):
        if not isinstance(cov.get(key), int) or cov[key] < 0:
            fail(f"{path}: coverage '{key}' must be a non-negative integer")
    for key in MCHECK_KNOBS:
        if cov[key] == 0:
            fail(f"{path}: adversary knob '{key}' never fired — the sweep "
                 f"proved nothing about it")
    for key in MCHECK_MACHINERY:
        if cov[key] == 0:
            fail(f"{path}: recovery machinery '{key}' never ran")
    if cov["steps"] == 0:
        fail(f"{path}: coverage recorded no explorer steps")
    if not isinstance(cov.get("transitions"), dict):
        fail(f"{path}: coverage missing 'transitions' map")


def check_identical(a, b):
    try:
        with open(a, "rb") as fa, open(b, "rb") as fb:
            if fa.read() != fb.read():
                fail(f"{a} and {b} differ: the parallel runner changed "
                     f"the serialized stream")
    except OSError as e:
        fail(str(e))


def main():
    args = sys.argv[1:]
    positional, pairs, timeline_pairs = [], [], []
    benches, replays, profiles, lives, mchecks = [], [], [], [], []
    timelines = []
    single = {"--bench": benches, "--profile": profiles,
              "--attribution": replays, "--live": lives,
              "--mcheck": mchecks, "--timeline": timelines}
    i = 0
    while i < len(args):
        if args[i] in ("--identical", "--timeline-identical"):
            if len(args) - i < 3:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            dest = pairs if args[i] == "--identical" else timeline_pairs
            dest.append((args[i + 1], args[i + 2]))
            i += 3
        elif args[i] in single:
            if len(args) - i < 2:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            single[args[i]].append(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) not in (1, 2) and not (
            (benches or profiles or lives or mchecks or timelines
             or timeline_pairs) and not positional):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if replays and not positional:
        # The replay is compared against a report, so one is required.
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    checks = []
    a = None
    if positional:
        a = validate(load(positional[0]), positional[0])
        checks.append("schema valid")
        if len(positional) == 2:
            b = validate(load(positional[1]), positional[1])
            if strip_perf(a) != strip_perf(b):
                fail("reports differ beyond perf blocks: the parallel runner "
                     "changed simulation results")
            checks.append("worker counts agree")
        for path in replays:
            check_attribution_replay(path, a, positional[0])
        if replays:
            checks.append(f"{len(replays)} attribution replay(s) match")
    for pa, pb in pairs:
        check_identical(pa, pb)
    if pairs:
        checks.append(f"{len(pairs)} stream pair(s) identical")
    for path in benches:
        validate_bench(load(path), path)
    if benches:
        checks.append(f"{len(benches)} bench document(s) valid")
    for path in profiles:
        validate_profile(load(path), path)
    if profiles:
        checks.append(f"{len(profiles)} profile document(s) valid")
    for path in lives:
        check_live(path)
    if lives:
        checks.append(f"{len(lives)} live stats stream(s) valid")
    for path in mchecks:
        check_mcheck(load(path), path)
    if mchecks:
        checks.append(f"{len(mchecks)} model-check sweep(s) covered")
    for path in timelines:
        check_timeline(path, a, positional[0] if positional else None)
    if timelines:
        checks.append(f"{len(timelines)} timeline(s) valid")
    for pa, pb in timeline_pairs:
        check_timeline_identical(pa, pb)
    if timeline_pairs:
        checks.append(
            f"{len(timeline_pairs)} timeline pair(s) deterministic")
    print(f"check_repro: OK ({', '.join(checks)})")


if __name__ == "__main__":
    main()
