//! Circular-orbit propagation.
//!
//! The LAMS concept (paper §2.1) is a constellation of satellites in low
//! circular orbits. Two-body circular propagation is exact for this model
//! (deterministic, as the paper's analysis assumes: "the subnet nodes know
//! the precise distances and variance of the link").

use crate::constants::{EARTH_RADIUS_KM, MU_EARTH};
use crate::geometry::Vec3;

/// A satellite on a circular orbit, parameterised by classical elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Satellite {
    /// Orbit altitude above the mean Earth surface, km.
    pub altitude_km: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Right ascension of the ascending node (RAAN), radians.
    pub raan: f64,
    /// Argument of latitude at t = 0 (phase along the orbit), radians.
    pub phase0: f64,
}

impl Satellite {
    /// Create a satellite. Altitude must be positive.
    pub fn new(altitude_km: f64, inclination_deg: f64, raan_deg: f64, phase0_deg: f64) -> Self {
        assert!(altitude_km > 0.0, "altitude must be positive");
        Satellite {
            altitude_km,
            inclination: inclination_deg.to_radians(),
            raan: raan_deg.to_radians(),
            phase0: phase0_deg.to_radians(),
        }
    }

    /// Orbit radius from the Earth's center, km.
    pub fn radius_km(&self) -> f64 {
        EARTH_RADIUS_KM + self.altitude_km
    }

    /// Orbital period, seconds: `2π √(a³/μ)`.
    pub fn period_s(&self) -> f64 {
        let a = self.radius_km();
        2.0 * core::f64::consts::PI * (a * a * a / MU_EARTH).sqrt()
    }

    /// Mean motion (angular rate), rad/s.
    pub fn mean_motion(&self) -> f64 {
        2.0 * core::f64::consts::PI / self.period_s()
    }

    /// ECI position at time `t_s` seconds after epoch.
    ///
    /// The orbit plane is built by rotating the equatorial circle by the
    /// inclination about the x-axis, then by the RAAN about the z-axis.
    pub fn position_at(&self, t_s: f64) -> Vec3 {
        let r = self.radius_km();
        let u = self.phase0 + self.mean_motion() * t_s; // argument of latitude
        let (su, cu) = u.sin_cos();
        let (si, ci) = self.inclination.sin_cos();
        let (so, co) = self.raan.sin_cos();
        // Position in the orbital plane, then rotate.
        let x_orb = r * cu;
        let y_orb = r * su;
        Vec3::new(
            x_orb * co - y_orb * ci * so,
            x_orb * so + y_orb * ci * co,
            y_orb * si,
        )
    }

    /// Range to another satellite at time `t_s`, km.
    pub fn range_to(&self, other: &Satellite, t_s: f64) -> f64 {
        self.position_at(t_s).distance(other.position_at(t_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leo_period_is_about_105_minutes() {
        // 1000 km circular orbit: T ≈ 105 min.
        let sat = Satellite::new(1000.0, 0.0, 0.0, 0.0);
        let t_min = sat.period_s() / 60.0;
        assert!((t_min - 105.1).abs() < 1.0, "T={t_min} min");
    }

    #[test]
    fn position_stays_on_sphere() {
        let sat = Satellite::new(800.0, 53.0, 120.0, 45.0);
        let r = sat.radius_km();
        for k in 0..100 {
            let p = sat.position_at(k as f64 * 61.7);
            assert!((p.norm() - r).abs() < 1e-6, "off sphere at step {k}");
        }
    }

    #[test]
    fn period_returns_to_start() {
        let sat = Satellite::new(1000.0, 45.0, 10.0, 0.0);
        let p0 = sat.position_at(0.0);
        let p1 = sat.position_at(sat.period_s());
        assert!(p0.distance(p1) < 1e-6);
    }

    #[test]
    fn equatorial_orbit_stays_in_plane() {
        let sat = Satellite::new(1000.0, 0.0, 0.0, 0.0);
        for k in 0..50 {
            assert!(sat.position_at(k as f64 * 100.0).z.abs() < 1e-9);
        }
    }

    #[test]
    fn polar_orbit_reaches_poles() {
        let sat = Satellite::new(1000.0, 90.0, 0.0, 0.0);
        // A quarter period after crossing the ascending node the satellite
        // is over a pole.
        let p = sat.position_at(sat.period_s() / 4.0);
        assert!((p.z - sat.radius_km()).abs() < 1e-3, "z={}", p.z);
    }

    #[test]
    fn in_plane_separation_constant() {
        // Two satellites in the same plane with a fixed phase offset keep
        // constant range (rigid rotation).
        let a = Satellite::new(1000.0, 53.0, 30.0, 0.0);
        let b = Satellite::new(1000.0, 53.0, 30.0, 20.0);
        let r0 = a.range_to(&b, 0.0);
        for k in 1..60 {
            let r = a.range_to(&b, k as f64 * 97.3);
            assert!((r - r0).abs() < 1e-6, "range drifted at step {k}");
        }
        // Chord for 20° at radius 7371: 2 r sin(10°) ≈ 2560 km.
        let expect = 2.0 * a.radius_km() * (10f64.to_radians()).sin();
        assert!((r0 - expect).abs() < 1.0);
    }

    #[test]
    fn cross_plane_range_varies() {
        // Satellites in different planes: range oscillates over a period.
        let a = Satellite::new(1000.0, 53.0, 0.0, 0.0);
        let b = Satellite::new(1000.0, 53.0, 60.0, 0.0);
        let ranges: Vec<f64> = (0..200).map(|k| a.range_to(&b, k as f64 * 40.0)).collect();
        let min = ranges.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ranges.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 1000.0, "min={min} max={max}");
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_altitude() {
        let _ = Satellite::new(0.0, 0.0, 0.0, 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_position_on_sphere(
                alt in 300.0f64..2000.0,
                inc in 0.0f64..180.0,
                raan in 0.0f64..360.0,
                phase in 0.0f64..360.0,
                t in 0.0f64..20_000.0,
            ) {
                let sat = Satellite::new(alt, inc, raan, phase);
                let r = sat.position_at(t).norm();
                prop_assert!((r - sat.radius_km()).abs() < 1e-6);
            }

            #[test]
            fn prop_range_symmetric(
                alt in 300.0f64..2000.0,
                raan_b in 0.0f64..360.0,
                phase_b in 0.0f64..360.0,
                t in 0.0f64..20_000.0,
            ) {
                let a = Satellite::new(alt, 60.0, 0.0, 0.0);
                let b = Satellite::new(alt, 60.0, raan_b, phase_b);
                prop_assert!((a.range_to(&b, t) - b.range_to(&a, t)).abs() < 1e-9);
            }

            #[test]
            fn prop_range_bounded_by_diameter(
                alt_a in 300.0f64..2000.0,
                alt_b in 300.0f64..2000.0,
                raan_b in 0.0f64..360.0,
                t in 0.0f64..20_000.0,
            ) {
                let a = Satellite::new(alt_a, 45.0, 0.0, 0.0);
                let b = Satellite::new(alt_b, 45.0, raan_b, 90.0);
                let max = a.radius_km() + b.radius_km();
                prop_assert!(a.range_to(&b, t) <= max + 1e-9);
            }
        }
    }
}
