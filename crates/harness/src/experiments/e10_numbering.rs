//! E10 — numbering size vs link frame length (§2.3, §3.3): LAMS-DLC's
//! numbering requirement is bounded by the resolving period and is
//! independent of the error rate; HDLC's grows with both the window (≥
//! link frame length for continuous operation) and the error rate
//! (numbers stay pinned across retransmissions).

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use crate::scenario::ScenarioConfig;
use analysis::numbering::{hdlc_numbering_size, lams_numbering_size};

/// Link distances swept, km.
pub const DISTANCES: &[f64] = &[2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0];

/// Run E10 (pure analysis + protocol-config cross-check; no simulation
/// needed — the quantity is a design bound).
pub fn run(_quick: bool) -> ExperimentOutput {
    let mut table = Table::new(
        "required numbering size vs link distance",
        &[
            "distance_km",
            "link_frame_length",
            "lams_numbering",
            "lams_config_modulus",
            "hdlc_numbering_ber_1e-7",
            "hdlc_numbering_ber_1e-5",
        ],
    );
    for &d in DISTANCES {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.distance_km = d;
        let p = cfg.link_params();
        let p_clean = {
            let mut q = cfg.clone();
            q.data_residual_ber = 1e-7;
            q.ctrl_residual_ber = 1e-8;
            q.link_params()
        };
        let p_noisy = {
            let mut q = cfg.clone();
            q.data_residual_ber = 1e-5;
            q.ctrl_residual_ber = 1e-6;
            q.link_params()
        };
        let q = 0.999_999; // one-in-a-million unresolved tail
        table.row(vec![
            d.into(),
            p.link_frame_length().into(),
            lams_numbering_size(&p).into(),
            cfg.lams_config().seq_modulus().into(),
            hdlc_numbering_size(&p_clean, q).into(),
            hdlc_numbering_size(&p_noisy, q).into(),
        ]);
    }
    ExperimentOutput {
        id: "E10",
        title: "Bounded numbering (paper §2.3, §3.3)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: every column grows with distance (more frames \
             in flight), but only the HDLC columns grow with the error \
             rate; the LAMS config modulus (a power of two) always covers \
             the analytic requirement"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_lams_bounded_hdlc_error_dependent() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            let lams = t.value(row, 2).unwrap();
            let modulus = t.value(row, 3).unwrap();
            assert!(modulus >= lams, "row {row}: modulus must cover requirement");
            let h_clean = t.value(row, 4).unwrap();
            let h_noisy = t.value(row, 5).unwrap();
            assert!(
                h_noisy > h_clean,
                "row {row}: HDLC requirement must grow with BER"
            );
        }
        // LAMS requirement grows with distance but stays modest.
        assert!(t.value(t.len() - 1, 2).unwrap() > t.value(0, 2).unwrap());
        assert!(t.value(t.len() - 1, 3).unwrap() < (1u64 << 20) as f64);
    }
}
