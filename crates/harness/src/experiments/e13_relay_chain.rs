//! E13 — multi-hop store-and-forward (ours; §2.2 assumption 3 / §2.3
//! motivation): end-to-end delay across a chain of noisy links. LAMS-DLC
//! forwards out-of-order at every intermediate hop and resequences once
//! at the destination; SR-HDLC pays the in-order holding at *every* hop.

use crate::experiments::ExperimentOutput;
use crate::parallel;
use crate::relay::{run_relay_lams, run_relay_sr, RelayConfig};
use crate::report::Table;
use crate::scenario::ScenarioConfig;
use sim_core::Duration;

/// Chain lengths swept.
pub const HOPS: &[usize] = &[1, 2, 3, 4];

/// Run E13.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 1_500 } else { 6_000 };
    let hops: &[usize] = if quick { &[1, 3] } else { HOPS };
    let mut table = Table::new(
        "end-to-end delay and goodput over a relay chain (residual BER 1e-5)",
        &[
            "hops",
            "lams_e2e_mean_ms",
            "sr_e2e_mean_ms",
            "lams_e2e_p99_ms",
            "sr_e2e_p99_ms",
            "lams_eff",
            "sr_eff",
            "lams_lost",
            "sr_lost",
        ],
    );
    let runs = parallel::map(hops.to_vec(), |h| {
        let mut base = ScenarioConfig::paper_default();
        base.n_packets = n;
        base.data_residual_ber = 1e-5;
        base.ctrl_residual_ber = 1e-6;
        base.deadline = Duration::from_secs(300);
        let cfg = RelayConfig { hops: h, base };
        (run_relay_lams(&cfg), run_relay_sr(&cfg))
    });
    for (&h, (lams, sr)) in hops.iter().zip(runs) {
        table.row(vec![
            (h as u64).into(),
            (lams.e2e_delay.mean() * 1e3).into(),
            (sr.e2e_delay.mean() * 1e3).into(),
            (lams.e2e_delay_hist.quantile(0.99).unwrap_or(0.0) * 1e3).into(),
            (sr.e2e_delay_hist.quantile(0.99).unwrap_or(0.0) * 1e3).into(),
            lams.efficiency().into(),
            sr.efficiency().into(),
            lams.lost.into(),
            sr.lost.into(),
        ]);
    }
    ExperimentOutput {
        id: "E13",
        title: "Store-and-forward relay chain (paper §2.2/§2.3, end-to-end)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: both delays grow with hop count (propagation \
             adds per hop), but the SR curve grows faster — each hop holds \
             frames for local resequencing and each hop's window must \
             resolve serially — and the gap widens with hops; zero loss \
             for both"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_lams_wins_and_gap_widens() {
        let out = run(true);
        let t = &out.tables[0];
        let mut last_gap = f64::NEG_INFINITY;
        for row in 0..t.len() {
            assert_eq!(t.value(row, 7).unwrap(), 0.0, "row {row}: lams lost");
            assert_eq!(t.value(row, 8).unwrap(), 0.0, "row {row}: sr lost");
            let lams = t.value(row, 1).unwrap();
            let sr = t.value(row, 2).unwrap();
            assert!(lams < sr, "row {row}: lams delay {lams} !< sr {sr}");
            let gap = sr - lams;
            assert!(gap > last_gap, "gap must widen with hops");
            last_gap = gap;
        }
    }
}
