#!/usr/bin/env python3
"""Validate `repro --json` output and its worker-count determinism.

Usage:
    check_repro.py report.json [report_parallel.json]
                   [--identical FILE_A FILE_B]...
                   [--bench BENCH.json]...

With one positional argument: validate the `lams-dlc.repro/1` schema
(top-level fields, per-experiment structure, perf blocks, live-monitor
metrics blocks).

With two positional arguments: additionally require the two documents to
be identical once every `perf` block (the only wall-clock-bearing field)
is nulled out — the parallel runner must be a pure speed knob.

Each `--identical A B` pair must be byte-identical files; used for the
`--trace`/`--metrics` JSONL outputs of serial vs parallel runs.

Each `--bench FILE` must be a valid `lams-dlc.bench/1` document (as
written by `bench_suite` or `scripts/bench.py`): micro-kernel rows with
positive timings, one entry per experiment id with a well-formed queue
profile, and a quick-all total that actually popped events.
"""

import json
import sys

EXPECTED_IDS = [f"E{i}" for i in range(1, 18)]

METRICS_KEYS = ("runs", "frames", "delivered", "naks", "retransmissions",
                "max_tx_outstanding", "audit_findings", "delivery_latency")
LATENCY_KEYS = ("count", "p50_s", "p99_s")


def fail(msg):
    print(f"check_repro: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate_metrics(metrics, exp_id, path):
    """The live monitor's per-experiment block: present for every LAMS
    experiment, null only when no audited link ran (analysis-only)."""
    if metrics is None:
        return
    for key in METRICS_KEYS:
        if key not in metrics:
            fail(f"{path}: {exp_id} metrics block missing '{key}'")
    if metrics["audit_findings"] != 0:
        fail(f"{path}: {exp_id} has {metrics['audit_findings']} "
             f"protocol audit finding(s)")
    lat = metrics["delivery_latency"]
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{path}: {exp_id} delivery_latency missing '{key}'")
    if metrics["frames"] > 0 and lat["count"] == 0:
        fail(f"{path}: {exp_id} released frames but recorded no latencies")


def validate(doc, path):
    if doc.get("schema") != "lams-dlc.repro/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'lams-dlc.repro/1'")
    if not isinstance(doc.get("quick"), bool):
        fail(f"{path}: 'quick' must be a bool")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    ids = []
    audited = 0
    for e in exps:
        for key in ("id", "title", "tables", "notes"):
            if key not in e:
                fail(f"{path}: experiment missing '{key}': {e.get('id', '?')}")
        ids.append(e["id"])
        if "metrics" not in e:
            fail(f"{path}: {e['id']} missing 'metrics' block")
        validate_metrics(e["metrics"], e["id"], path)
        if e["metrics"] is not None:
            audited += 1
        perf = e.get("perf")
        if perf is None:
            continue  # an experiment with no simulations (analysis-only)
        for key in ("scheduled", "popped", "peak_depth", "wall_secs",
                    "events_per_sec", "runs"):
            if key not in perf:
                fail(f"{path}: {e['id']} perf block missing '{key}'")
        if perf["popped"] <= 0:
            fail(f"{path}: {e['id']} perf block popped no events")
    if ids != EXPECTED_IDS:
        fail(f"{path}: experiment ids {ids} != {EXPECTED_IDS}")
    if audited == 0:
        fail(f"{path}: no experiment carries live-monitor metrics")
    return doc


BENCH_EXPECTED_IDS = [f"e{i}" for i in range(1, 18)]

MICRO_KEYS = ("name", "iters", "ops", "wall_secs", "ns_per_op",
              "ops_per_sec")
QUEUE_KEYS = ("scheduled", "popped", "cancelled", "peak_depth",
              "horizon_s")


def validate_bench(doc, path):
    """The `lams-dlc.bench/1` schema from bench_suite / bench.py."""
    if doc.get("schema") != "lams-dlc.bench/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"want 'lams-dlc.bench/1'")
    micro = doc.get("micro")
    if not isinstance(micro, list) or not micro:
        fail(f"{path}: 'micro' must be a non-empty array")
    names = []
    for m in micro:
        for key in MICRO_KEYS:
            if key not in m:
                fail(f"{path}: micro kernel missing '{key}': "
                     f"{m.get('name', '?')}")
        names.append(m["name"])
        if m["ops"] < m["iters"] or m["wall_secs"] < 0:
            fail(f"{path}: micro kernel {m['name']} has nonsensical "
                 f"ops/wall fields")
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate micro kernel names: {names}")
    exps = doc.get("experiments")
    if not isinstance(exps, list) or not exps:
        fail(f"{path}: 'experiments' must be a non-empty array")
    ids = [e.get("id") for e in exps]
    if ids != BENCH_EXPECTED_IDS:
        fail(f"{path}: experiment ids {ids} != {BENCH_EXPECTED_IDS}")
    for e in exps:
        for key in ("runs", "wall_secs", "events_per_sec", "queue"):
            if key not in e:
                fail(f"{path}: {e['id']} missing '{key}'")
        q = e["queue"]
        if q is None:
            continue  # analysis-only experiment, no simulations
        for key in QUEUE_KEYS:
            if key not in q:
                fail(f"{path}: {e['id']} queue profile missing '{key}'")
        if q["popped"] <= 0 or e["events_per_sec"] <= 0:
            fail(f"{path}: {e['id']} ran simulations but popped nothing")
    total = doc.get("total")
    if not isinstance(total, dict):
        fail(f"{path}: missing 'total' block")
    for key in ("runs", "wall_secs", "events_per_sec", "popped"):
        if key not in total:
            fail(f"{path}: total block missing '{key}'")
    if total["popped"] <= 0 or total["events_per_sec"] <= 0:
        fail(f"{path}: quick-all total popped no events")


def strip_perf(node):
    if isinstance(node, dict):
        return {k: (None if k == "perf" else strip_perf(v))
                for k, v in node.items()}
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


def check_identical(a, b):
    try:
        with open(a, "rb") as fa, open(b, "rb") as fb:
            if fa.read() != fb.read():
                fail(f"{a} and {b} differ: the parallel runner changed "
                     f"the serialized stream")
    except OSError as e:
        fail(str(e))


def main():
    args = sys.argv[1:]
    positional, pairs, benches = [], [], []
    i = 0
    while i < len(args):
        if args[i] == "--identical":
            if len(args) - i < 3:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            pairs.append((args[i + 1], args[i + 2]))
            i += 3
        elif args[i] == "--bench":
            if len(args) - i < 2:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            benches.append(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) not in (1, 2) and not (benches and not positional):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    checks = []
    if positional:
        a = validate(load(positional[0]), positional[0])
        checks.append("schema valid")
        if len(positional) == 2:
            b = validate(load(positional[1]), positional[1])
            if strip_perf(a) != strip_perf(b):
                fail("reports differ beyond perf blocks: the parallel runner "
                     "changed simulation results")
            checks.append("worker counts agree")
    for pa, pb in pairs:
        check_identical(pa, pb)
    if pairs:
        checks.append(f"{len(pairs)} stream pair(s) identical")
    for path in benches:
        validate_bench(load(path), path)
    if benches:
        checks.append(f"{len(benches)} bench document(s) valid")
    print(f"check_repro: OK ({', '.join(checks)})")


if __name__ == "__main__":
    main()
