//! Orbital-geometry integration: protocols running over real LEO pass
//! profiles with time-varying delay and finite link lifetimes.

use harness::{run_lams, run_sr, ScenarioConfig};
use orbit::{visibility_windows, LinkConstraints, LinkProfile, Satellite};
use sim_core::Duration;

fn cross_plane_profile() -> LinkProfile {
    let a = Satellite::new(1000.0, 80.0, 0.0, 0.0);
    let b = Satellite::new(1000.0, 80.0, 90.0, 0.0);
    let windows = visibility_windows(&a, &b, 2.0 * a.period_s(), 5.0, &LinkConstraints::default());
    let w = windows
        .iter()
        .copied()
        .max_by(|x, y| x.duration_s().total_cmp(&y.duration_s()))
        .expect("no visibility window");
    LinkProfile::build(&a, &b, w, 5.0, 30.0)
}

#[test]
fn pass_profile_is_in_paper_envelope() {
    let p = cross_plane_profile();
    // §2.1: links 2,000–10,000 km, delays 10–100 ms RTT.
    assert!(p.range_max_km <= 10_000.0 + 1.0);
    assert!(p.range_min_km >= 500.0);
    let rtt = p.mean_rtt_s();
    assert!(rtt > 5e-3 && rtt < 100e-3, "rtt={rtt}");
    // Link lifetime of minutes — the defining LAMS property.
    assert!(
        p.window.duration_s() > 120.0,
        "lifetime {}",
        p.window.duration_s()
    );
    assert!(p.usable_s() < p.window.duration_s());
}

#[test]
fn transfer_over_varying_delay_is_lossless() {
    let profile = cross_plane_profile();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.alpha = Duration::from_secs_f64(2.0 * profile.alpha_s());
    cfg.profile = Some((profile, 0.0));
    cfg.n_packets = 10_000;
    cfg.data_residual_ber = 1e-6;
    cfg.deadline = Duration::from_secs(120);
    let lams = run_lams(&cfg);
    assert_eq!(lams.lost, 0);
    assert!(
        !lams.link_failed,
        "delay variation must not look like failure"
    );
    let sr = run_sr(&cfg);
    assert_eq!(sr.lost, 0);
    assert!(
        lams.efficiency() > sr.efficiency(),
        "lams {} !> sr {}",
        lams.efficiency(),
        sr.efficiency()
    );
}

#[test]
fn start_offset_changes_delay_but_not_reliability() {
    let profile = cross_plane_profile();
    let usable = profile.usable_s();
    for (i, frac) in [0.1f64, 0.5, 0.9].into_iter().enumerate() {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.alpha = Duration::from_secs_f64(2.0 * profile.alpha_s());
        cfg.profile = Some((profile.clone(), frac * usable));
        cfg.n_packets = 3_000;
        cfg.seed = 40 + i as u64;
        cfg.deadline = Duration::from_secs(60);
        let r = run_lams(&cfg);
        assert_eq!(r.lost, 0, "offset {frac}");
        assert_eq!(r.delivered_unique, 3_000, "offset {frac}");
    }
}

#[test]
fn same_plane_pair_behaves_like_fixed_link() {
    // Same-plane neighbours keep constant range: the profile-driven run
    // should match a fixed-distance run closely.
    let a = Satellite::new(1000.0, 53.0, 10.0, 0.0);
    let b = Satellite::new(1000.0, 53.0, 10.0, 25.0);
    let windows = visibility_windows(&a, &b, 7000.0, 10.0, &LinkConstraints::default());
    assert_eq!(
        windows.len(),
        1,
        "in-plane neighbours always see each other"
    );
    let profile = LinkProfile::build(&a, &b, windows[0], 10.0, 0.0);
    assert!(profile.range_var_km2 < 1.0, "range should be constant");

    let mut moving = ScenarioConfig::paper_default();
    moving.profile = Some((profile.clone(), 0.0));
    moving.n_packets = 5_000;
    let mut fixed = ScenarioConfig::paper_default();
    fixed.distance_km = profile.range_mean_km;
    fixed.n_packets = 5_000;
    let rm = run_lams(&moving);
    let rf = run_lams(&fixed);
    assert_eq!(rm.lost, 0);
    let dm = rm.elapsed_s();
    let df = rf.elapsed_s();
    assert!((dm - df).abs() / df < 0.05, "moving {dm} vs fixed {df}");
}
