//! The LAMS-DLC receiver state machine (§3.2).
//!
//! The receiver:
//!
//! * delivers clean I-frames upward **immediately and out of order**
//!   (after the deterministic processing time `t_proc`) — the receiving
//!   buffer never holds frames for resequencing, which is what makes its
//!   size "transparent" (§3.3, §4);
//! * records erroneous I-frames — payload-corrupted arrivals *and* frames
//!   inferred lost from sequence gaps (losses are detectable errors,
//!   assumption 9; gaps work because the sender's wire numbers are
//!   strictly monotone) — and reports each for `C_depth` consecutive
//!   checkpoints (the cumulative NAK);
//! * emits a Check-Point command every `W_cp` for as long as the link is
//!   active, carrying the cumulative NAK list, the coverage horizon
//!   (implicit positive acknowledgement) and the Stop-Go bit;
//! * answers a Request-NAK immediately with an Enforced-NAK covering the
//!   resolving period (or a Resolving Command if it has nothing to
//!   report).

use crate::config::LamsConfig;
use crate::dedup::DedupWindow;
use crate::events::ReceiverEvent;
use crate::frame::{CheckPoint, ControlFrame, Frame, InfoFrame, PacketId, RxStatus, StopGo};
use bytes::Bytes;
use proto_core::Instant;
use proto_core::{Trace, TraceEvent};
use std::collections::{BTreeSet, VecDeque};

/// A datagram handed to the network layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// End-to-end datagram id (for the destination resequencer).
    pub packet_id: PacketId,
    /// Link sequence number it arrived under (diagnostics only — the
    /// number is not stable across retransmissions).
    pub seq: u64,
    /// Payload.
    pub payload: Bytes,
    /// When processing completed and the datagram became available.
    pub ready_at: Instant,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Clean I-frames accepted for delivery.
    pub accepted: u64,
    /// Payload-corrupted arrivals recorded for NAKing.
    pub corrupted: u64,
    /// Frames inferred lost from sequence gaps.
    pub gaps_inferred: u64,
    /// Periodic checkpoints emitted.
    pub checkpoints_sent: u64,
    /// Enforced-NAKs sent in answer to Request-NAKs.
    pub enforced_sent: u64,
    /// Clean frames discarded because the processing queue was full.
    pub overflow_discards: u64,
    /// Duplicate wire sequence numbers ignored (should stay 0 on a FIFO
    /// link).
    pub stale_seq_dropped: u64,
    /// Duplicate datagrams suppressed by the link-level dedup window
    /// (the §3.2 "more recent version"; 0 unless enabled).
    pub duplicates_suppressed: u64,
}

/// The LAMS-DLC receiving endpoint.
pub struct Receiver {
    cfg: LamsConfig,
    /// Highest logical sequence number accounted for (arrived or inferred).
    highest_seen: u64,
    /// Errors detected during the current (open) checkpoint interval.
    current_errors: BTreeSet<u64>,
    /// Error sets of the most recent completed intervals, newest at the
    /// back; at most `C_depth` kept, so the union over `history` is
    /// exactly the cumulative NAK content.
    history: VecDeque<BTreeSet<u64>>,
    cp_index: u64,
    next_cp_at: Option<Instant>,
    /// Deterministic single-server processing queue: (ready_at, delivery).
    processing: VecDeque<Delivery>,
    server_free_at: Instant,
    /// Maximum frames allowed in the processing queue.
    capacity: usize,
    /// Occupancy at or above which checkpoints signal Stop.
    stop_watermark: usize,
    congested: bool,
    pending_tx: VecDeque<Frame>,
    events: VecDeque<ReceiverEvent>,
    stats: ReceiverStats,
    /// Optional link-level duplicate suppression (§3.2 extension).
    dedup: Option<DedupWindow>,
    trace: Trace,
}

impl Receiver {
    /// Create a receiver with effectively unbounded processing capacity
    /// (the paper's transparent-buffer operating point).
    pub fn new(cfg: LamsConfig) -> Self {
        Self::with_capacity(cfg, usize::MAX / 2, usize::MAX / 2)
    }

    /// Create a receiver with a bounded processing queue: `capacity`
    /// frames total, Stop signalled at `stop_watermark` occupancy. Used by
    /// the flow-control experiments.
    pub fn with_capacity(cfg: LamsConfig, capacity: usize, stop_watermark: usize) -> Self {
        cfg.validate().expect("invalid LamsConfig");
        assert!(stop_watermark <= capacity);
        Receiver {
            cfg,
            highest_seen: 0,
            current_errors: BTreeSet::new(),
            history: VecDeque::new(),
            cp_index: 0,
            next_cp_at: None,
            processing: VecDeque::new(),
            server_free_at: Instant::ZERO,
            capacity,
            stop_watermark,
            congested: false,
            pending_tx: VecDeque::new(),
            events: VecDeque::new(),
            stats: ReceiverStats::default(),
            dedup: None,
            trace: Trace::disabled(),
        }
    }

    /// Enable the zero-duplication extension (§3.2's "more recent
    /// version"): datagrams repeated within one resolving period are
    /// suppressed at the link level, so the destination sees each id at
    /// most once even across enforced recovery. Memory is bounded by the
    /// resolving window.
    pub fn with_dedup(mut self) -> Self {
        let horizon = self.cfg.resolving_period();
        self.dedup = Some(DedupWindow::new(horizon));
        self
    }

    /// Mark the link active at `now`: the first checkpoint is scheduled one
    /// interval later, and checkpoints then flow for as long as the link
    /// is up (§3: "commands are sent by the receiver so long as the link
    /// is active").
    pub fn start(&mut self, now: Instant) {
        self.next_cp_at = Some(now + self.cfg.w_cp);
        self.server_free_at = now;
    }

    /// Counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Frames currently in the processing queue.
    pub fn processing_occupancy(&self) -> usize {
        self.processing.len()
    }

    /// Highest sequence number accounted for.
    pub fn highest_seen(&self) -> u64 {
        self.highest_seen
    }

    /// Drain the next protocol notification.
    pub fn poll_event(&mut self) -> Option<ReceiverEvent> {
        self.events.pop_front()
    }

    /// Earliest instant at which the receiver has time-driven work.
    pub fn poll_timeout(&self) -> Option<Instant> {
        let cp = self.next_cp_at;
        let ready = self.processing.front().map(|d| d.ready_at);
        match (cp, ready) {
            (None, r) => r,
            (c, None) => c,
            (Some(c), Some(r)) => Some(c.min(r)),
        }
    }

    /// Fire timers due at `now` (checkpoint emission).
    pub fn on_timeout(&mut self, now: Instant) {
        while let Some(at) = self.next_cp_at {
            if at > now {
                break;
            }
            self.emit_checkpoint(at, false, None);
            self.next_cp_at = Some(at + self.cfg.w_cp);
        }
    }

    /// Drain the next outbound control frame.
    pub fn poll_transmit(&mut self, _now: Instant) -> Option<Frame> {
        self.pending_tx.pop_front()
    }

    /// Pop the next completed delivery whose processing finished by `now`.
    pub fn poll_deliver(&mut self, now: Instant) -> Option<Delivery> {
        if self.processing.front().is_some_and(|d| d.ready_at <= now) {
            let d = self.processing.pop_front().expect("front");
            self.update_congestion(now);
            Some(d)
        } else {
            None
        }
    }

    /// Inject a frame from the channel.
    pub fn handle_frame(&mut self, now: Instant, frame: Frame, status: RxStatus) {
        match frame {
            Frame::Info(i) => self.handle_info(now, i, status),
            Frame::Control(ControlFrame::RequestNak { probe }) => {
                if status == RxStatus::Ok {
                    self.handle_request_nak(now, probe);
                }
                // A corrupted Request-NAK is indistinguishable from noise;
                // the sender's failure timer covers the retry.
            }
            // Checkpoints are sender-bound; ignore at the receiver.
            Frame::Control(ControlFrame::CheckPoint(_)) => {}
        }
    }

    fn handle_info(&mut self, now: Instant, info: InfoFrame, status: RxStatus) {
        self.trace.emit(now, || TraceEvent::IFrameRx {
            seq: info.seq,
            clean: status == RxStatus::Ok,
            len: info.payload.len() as u64,
        });
        // Gap inference: wire numbers are strictly monotone, so numbers
        // skipped below this arrival are lost frames (assumption 9).
        if info.seq <= self.highest_seen && self.highest_seen != 0 {
            // Duplicate or reordered wire frame — cannot happen on the
            // FIFO link; drop defensively.
            self.stats.stale_seq_dropped += 1;
            return;
        }
        let expected = self.highest_seen + 1;
        for missing in expected..info.seq {
            self.record_error(now, missing, false);
            self.stats.gaps_inferred += 1;
        }
        self.highest_seen = info.seq;

        match status {
            RxStatus::PayloadCorrupted => {
                self.stats.corrupted += 1;
                self.record_error(now, info.seq, true);
            }
            RxStatus::Ok => {
                if let Some(d) = self.dedup.as_mut() {
                    if !d.accept(now, info.packet_id) {
                        self.stats.duplicates_suppressed += 1;
                        self.events.push_back(ReceiverEvent::DuplicateSuppressed {
                            packet_id: info.packet_id,
                            seq: info.seq,
                        });
                        return;
                    }
                }
                if self.processing.len() >= self.capacity {
                    // §3.4: the receiver may discard overflow while
                    // signalling Stop; the discarded frame is NAK'd so the
                    // sender retransmits it later.
                    self.stats.overflow_discards += 1;
                    self.record_error(now, info.seq, true);
                    self.events
                        .push_back(ReceiverEvent::OverflowDiscarded { seq: info.seq });
                } else {
                    self.stats.accepted += 1;
                    let start = self.server_free_at.max(now);
                    let ready_at = start + self.cfg.t_proc;
                    self.server_free_at = ready_at;
                    self.events.push_back(ReceiverEvent::Delivered {
                        packet_id: info.packet_id,
                        seq: info.seq,
                    });
                    self.processing.push_back(Delivery {
                        packet_id: info.packet_id,
                        seq: info.seq,
                        payload: info.payload,
                        ready_at,
                    });
                    self.update_congestion(now);
                }
            }
        }
    }

    fn record_error(&mut self, now: Instant, seq: u64, arrived: bool) {
        self.current_errors.insert(seq);
        self.events
            .push_back(ReceiverEvent::ErrorRecorded { seq, arrived });
        // The open interval closes into checkpoint `cp_index + 1`: that is
        // the first checkpoint whose cumulative NAK list carries this error.
        self.trace.emit(now, || TraceEvent::Nak {
            seq,
            cp_index: self.cp_index + 1,
        });
    }

    fn handle_request_nak(&mut self, now: Instant, probe: u64) {
        // §3.2: "upon receiving a Request-NAK the receiver must respond
        // immediately with an Enforced-NAK" carrying all erroneous frames
        // from the resolving period — which the cumulative window spans.
        self.emit_checkpoint(now, true, Some(probe));
        self.stats.enforced_sent += 1;
        self.events
            .push_back(ReceiverEvent::EnforcedNakSent { probe });
    }

    fn emit_checkpoint(&mut self, now: Instant, enforced: bool, probe: Option<u64>) {
        // Close the current interval into history; keep C_depth intervals.
        let closing = core::mem::take(&mut self.current_errors);
        self.history.push_back(closing);
        while self.history.len() > self.cfg.c_depth as usize {
            self.history.pop_front();
        }
        let mut naks: Vec<u64> = self
            .history
            .iter()
            .flatten()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        naks.sort_unstable();
        self.cp_index += 1;
        let stop_go = if self.processing.len() >= self.stop_watermark {
            StopGo::Stop
        } else {
            StopGo::Go
        };
        self.stats.checkpoints_sent += 1;
        self.trace.emit(now, || TraceEvent::CheckpointEmitted {
            index: self.cp_index,
            covered: self.highest_seen,
            naks: naks.len() as u64,
            enforced,
            stop: stop_go == StopGo::Stop,
        });
        self.pending_tx
            .push_back(Frame::Control(ControlFrame::CheckPoint(CheckPoint {
                index: self.cp_index,
                covered: self.highest_seen,
                naks,
                enforced,
                probe,
                stop_go,
            })));
    }

    fn update_congestion(&mut self, now: Instant) {
        let now_congested = self.processing.len() >= self.stop_watermark;
        if now_congested && !self.congested {
            self.congested = true;
            self.events.push_back(ReceiverEvent::CongestionOnset);
            self.trace.emit(now, || TraceEvent::BufferWatermark {
                buffer: "rx",
                level: self.processing.len() as u64,
                rising: true,
            });
        } else if !now_congested && self.congested {
            self.congested = false;
            self.events.push_back(ReceiverEvent::CongestionCleared);
            self.trace.emit(now, || TraceEvent::BufferWatermark {
                buffer: "rx",
                level: self.processing.len() as u64,
                rising: false,
            });
        }
    }
}

impl proto_core::Machine for Receiver {
    type Frame = Frame;
    type Event = ReceiverEvent;

    fn start(&mut self, now: Instant) {
        Receiver::start(self, now);
    }

    fn handle_frame(&mut self, now: Instant, frame: Frame, status: RxStatus) {
        Receiver::handle_frame(self, now, frame, status);
    }

    fn poll_transmit(&mut self, now: Instant) -> Option<Frame> {
        Receiver::poll_transmit(self, now)
    }

    fn poll_timeout(&self) -> Option<Instant> {
        Receiver::poll_timeout(self)
    }

    fn on_timeout(&mut self, now: Instant) {
        Receiver::on_timeout(self, now);
    }

    fn poll_event(&mut self) -> Option<ReceiverEvent> {
        Receiver::poll_event(self)
    }

    fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }
}

impl proto_core::ReceiverMachine for Receiver {
    fn poll_deliver(&mut self, now: Instant) -> Option<proto_core::Delivered> {
        Receiver::poll_deliver(self, now).map(|d| proto_core::Delivered {
            id: d.packet_id.0,
            payload: d.payload,
        })
    }

    fn occupancy(&self) -> usize {
        self.processing_occupancy()
    }

    fn stat_pairs(&self) -> Vec<(&'static str, f64)> {
        let s = self.stats();
        vec![
            (
                "lams.receiver.overflow_discards",
                s.overflow_discards as f64,
            ),
            ("lams.receiver.enforced_naks_sent", s.enforced_sent as f64),
            ("lams.receiver.checkpoints_sent", s.checkpoints_sent as f64),
            ("lams.receiver.gaps_inferred", s.gaps_inferred as f64),
            ("lams.receiver.corrupted_arrivals", s.corrupted as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proto_core::Duration;

    fn cfg() -> LamsConfig {
        LamsConfig::paper_default()
    }

    fn started() -> (Receiver, Instant) {
        let mut r = Receiver::new(cfg());
        r.start(Instant::ZERO);
        (r, Instant::ZERO)
    }

    fn info(seq: u64) -> Frame {
        Frame::Info(InfoFrame {
            seq,
            packet_id: PacketId(1000 + seq),
            payload: Bytes::from_static(b"data"),
        })
    }

    fn next_cp(r: &mut Receiver, at: Instant) -> CheckPoint {
        r.on_timeout(at);
        match r.poll_transmit(at) {
            Some(Frame::Control(ControlFrame::CheckPoint(cp))) => cp,
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn checkpoints_flow_periodically_even_when_idle() {
        let (mut r, now) = started();
        assert_eq!(r.poll_timeout(), Some(now + cfg().w_cp));
        for k in 1..=5u64 {
            let cp = next_cp(&mut r, now + cfg().w_cp * k);
            assert_eq!(cp.index, k);
            assert!(cp.naks.is_empty());
            assert_eq!(cp.covered, 0);
            assert!(!cp.enforced);
        }
        assert_eq!(r.stats().checkpoints_sent, 5);
    }

    #[test]
    fn clean_frame_delivered_after_t_proc() {
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::Ok);
        assert_eq!(r.processing_occupancy(), 1);
        assert!(r.poll_deliver(now).is_none(), "not ready before t_proc");
        let ready = now + cfg().t_proc;
        let d = r.poll_deliver(ready).expect("delivery");
        assert_eq!(d.packet_id, PacketId(1001));
        assert_eq!(d.seq, 1);
        assert_eq!(r.processing_occupancy(), 0);
        assert_eq!(r.stats().accepted, 1);
    }

    #[test]
    fn out_of_order_numbers_deliver_immediately() {
        // Wire seq jumps 1 → 3 (2 was lost): 3 is delivered without
        // waiting — the relaxed in-sequence constraint in action.
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::Ok);
        r.handle_frame(now, info(3), RxStatus::Ok);
        let t = now + cfg().t_proc * 2;
        let d1 = r.poll_deliver(t).unwrap();
        let d2 = r.poll_deliver(t).unwrap();
        assert_eq!((d1.seq, d2.seq), (1, 3));
        assert_eq!(r.stats().gaps_inferred, 1);
    }

    #[test]
    fn corrupted_frame_recorded_and_nacked() {
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::PayloadCorrupted);
        let cp = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp.naks, vec![1]);
        assert_eq!(cp.covered, 1, "corrupted frame still advances coverage");
        assert_eq!(r.stats().corrupted, 1);
    }

    #[test]
    fn gap_inferred_loss_nacked() {
        let (mut r, now) = started();
        r.handle_frame(now, info(5), RxStatus::Ok);
        let cp = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp.naks, vec![1, 2, 3, 4]);
        assert_eq!(cp.covered, 5);
    }

    #[test]
    fn cumulative_nak_repeats_for_c_depth_checkpoints() {
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::PayloadCorrupted);
        let c_depth = cfg().c_depth as u64;
        for k in 1..=c_depth {
            let cp = next_cp(&mut r, now + cfg().w_cp * k);
            assert_eq!(cp.naks, vec![1], "checkpoint {k} must repeat the NAK");
        }
        // After C_depth checkpoints the NAK ages out.
        let cp = next_cp(&mut r, now + cfg().w_cp * (c_depth + 1));
        assert!(cp.naks.is_empty(), "NAK did not age out: {:?}", cp.naks);
    }

    #[test]
    fn distinct_intervals_carry_disjoint_new_information() {
        // Errors in different intervals accumulate; the checkpoint's list
        // is their union over the window.
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::PayloadCorrupted);
        let cp1 = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp1.naks, vec![1]);
        r.handle_frame(now + cfg().w_cp, info(2), RxStatus::PayloadCorrupted);
        let cp2 = next_cp(&mut r, now + cfg().w_cp * 2);
        assert_eq!(cp2.naks, vec![1, 2]);
    }

    #[test]
    fn request_nak_answered_immediately_with_enforced() {
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::PayloadCorrupted);
        let t = now + Duration::from_micros(100);
        r.handle_frame(
            t,
            Frame::Control(ControlFrame::RequestNak { probe: 7 }),
            RxStatus::Ok,
        );
        match r.poll_transmit(t) {
            Some(Frame::Control(ControlFrame::CheckPoint(cp))) => {
                assert!(cp.enforced);
                assert_eq!(cp.probe, Some(7));
                assert_eq!(cp.naks, vec![1]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().enforced_sent, 1);
        let sent = std::iter::from_fn(|| r.poll_event())
            .any(|e| matches!(e, ReceiverEvent::EnforcedNakSent { probe: 7 }));
        assert!(sent);
    }

    #[test]
    fn enforced_nak_with_no_errors_is_resolving_command() {
        let (mut r, now) = started();
        r.handle_frame(
            now,
            Frame::Control(ControlFrame::RequestNak { probe: 1 }),
            RxStatus::Ok,
        );
        match r.poll_transmit(now) {
            Some(Frame::Control(ControlFrame::CheckPoint(cp))) => {
                assert!(cp.is_resolving_command());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupted_request_nak_ignored() {
        let (mut r, now) = started();
        r.handle_frame(
            now,
            Frame::Control(ControlFrame::RequestNak { probe: 1 }),
            RxStatus::PayloadCorrupted,
        );
        assert!(r.poll_transmit(now).is_none());
        assert_eq!(r.stats().enforced_sent, 0);
    }

    #[test]
    fn overflow_discards_and_naks() {
        let mut r = Receiver::with_capacity(cfg(), 2, 1);
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(1), RxStatus::Ok);
        r.handle_frame(now, info(2), RxStatus::Ok);
        r.handle_frame(now, info(3), RxStatus::Ok); // over capacity
        assert_eq!(r.stats().overflow_discards, 1);
        assert_eq!(r.processing_occupancy(), 2);
        let cp = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp.naks, vec![3], "discarded frame must be NAK'd");
        assert_eq!(cp.stop_go, StopGo::Stop);
    }

    #[test]
    fn stop_go_tracks_watermark() {
        let mut r = Receiver::with_capacity(cfg(), 10, 2);
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(1), RxStatus::Ok);
        let cp = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp.stop_go, StopGo::Go);
        r.handle_frame(now + cfg().w_cp, info(2), RxStatus::Ok);
        r.handle_frame(now + cfg().w_cp, info(3), RxStatus::Ok);
        let cp = next_cp(&mut r, now + cfg().w_cp * 2);
        assert_eq!(cp.stop_go, StopGo::Stop);
        // Drain the queue; congestion clears.
        let mut t = now + cfg().w_cp * 2;
        let mut drained = 0;
        while drained < 3 {
            t += cfg().t_proc;
            if r.poll_deliver(t).is_some() {
                drained += 1;
            }
        }
        let events: Vec<_> = std::iter::from_fn(|| r.poll_event()).collect();
        assert!(events.contains(&ReceiverEvent::CongestionOnset));
        assert!(events.contains(&ReceiverEvent::CongestionCleared));
        let cp = next_cp(&mut r, t.max(now + cfg().w_cp * 3));
        assert_eq!(cp.stop_go, StopGo::Go);
    }

    #[test]
    fn stale_wire_seq_dropped() {
        let (mut r, now) = started();
        r.handle_frame(now, info(5), RxStatus::Ok);
        r.handle_frame(now, info(3), RxStatus::Ok);
        assert_eq!(r.stats().stale_seq_dropped, 1);
        assert_eq!(r.stats().accepted, 1);
    }

    #[test]
    fn processing_is_single_server_fifo() {
        // Two frames arriving together complete t_proc apart.
        let (mut r, now) = started();
        r.handle_frame(now, info(1), RxStatus::Ok);
        r.handle_frame(now, info(2), RxStatus::Ok);
        let d1 = r.poll_deliver(now + cfg().t_proc).expect("first");
        assert_eq!(d1.ready_at, now + cfg().t_proc);
        assert!(r.poll_deliver(now + cfg().t_proc).is_none());
        let d2 = r.poll_deliver(now + cfg().t_proc * 2).expect("second");
        assert_eq!(d2.ready_at, now + cfg().t_proc * 2);
    }

    #[test]
    fn enforced_nak_while_congested_carries_stop() {
        // A Request-NAK during congestion must still be answered
        // immediately, and the Enforced-NAK carries the Stop bit.
        let mut r = Receiver::with_capacity(cfg(), 4, 1);
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        for s in 1..=3 {
            r.handle_frame(now, info(s), RxStatus::Ok);
        }
        r.handle_frame(
            now,
            Frame::Control(ControlFrame::RequestNak { probe: 9 }),
            RxStatus::Ok,
        );
        match r.poll_transmit(now) {
            Some(Frame::Control(ControlFrame::CheckPoint(cp))) => {
                assert!(cp.enforced);
                assert_eq!(cp.stop_go, StopGo::Stop);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_indices_strictly_increase_across_enforced() {
        // Enforced-NAKs share the checkpoint index sequence, so the
        // sender's staleness/gap logic stays sound.
        let (mut r, now) = started();
        let cp1 = next_cp(&mut r, now + cfg().w_cp);
        r.handle_frame(
            now + cfg().w_cp,
            Frame::Control(ControlFrame::RequestNak { probe: 1 }),
            RxStatus::Ok,
        );
        let enak = match r.poll_transmit(now + cfg().w_cp) {
            Some(Frame::Control(ControlFrame::CheckPoint(cp))) => cp,
            other => panic!("{other:?}"),
        };
        let cp3 = next_cp(&mut r, now + cfg().w_cp * 2);
        assert!(cp1.index < enak.index);
        assert!(enak.index < cp3.index);
    }

    #[test]
    fn watermark_equal_capacity_never_stops_until_full() {
        let mut r = Receiver::with_capacity(cfg(), 2, 2);
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        r.handle_frame(now, info(1), RxStatus::Ok);
        let cp = next_cp(&mut r, now + cfg().w_cp);
        assert_eq!(cp.stop_go, StopGo::Go);
        r.handle_frame(now + cfg().w_cp, info(2), RxStatus::Ok);
        let cp = next_cp(&mut r, now + cfg().w_cp * 2);
        assert_eq!(cp.stop_go, StopGo::Stop);
    }

    #[test]
    fn dedup_extension_suppresses_repeats() {
        let mut r = Receiver::new(cfg()).with_dedup();
        r.start(Instant::ZERO);
        let now = Instant::ZERO;
        // Original under seq 1, duplicate (same packet id) under the
        // renumbered seq 2 — the enforced-recovery duplication pattern.
        r.handle_frame(
            now,
            Frame::Info(InfoFrame {
                seq: 1,
                packet_id: PacketId(500),
                payload: Bytes::from_static(b"d"),
            }),
            RxStatus::Ok,
        );
        r.handle_frame(
            now + Duration::from_millis(3),
            Frame::Info(InfoFrame {
                seq: 2,
                packet_id: PacketId(500),
                payload: Bytes::from_static(b"d"),
            }),
            RxStatus::Ok,
        );
        assert_eq!(r.stats().duplicates_suppressed, 1);
        assert_eq!(r.stats().accepted, 1);
        let suppressed = std::iter::from_fn(|| r.poll_event()).any(|e| {
            matches!(
                e,
                ReceiverEvent::DuplicateSuppressed {
                    packet_id: PacketId(500),
                    seq: 2
                }
            )
        });
        assert!(suppressed);
        // Coverage still advances past the duplicate's sequence number.
        assert_eq!(r.highest_seen(), 2);
        // Exactly one delivery comes out.
        let t = now + cfg().t_proc * 4;
        assert!(r.poll_deliver(t).is_some());
        assert!(r.poll_deliver(t).is_none());
    }

    #[test]
    fn missed_checkpoint_ticks_catch_up() {
        // If the driver calls on_timeout late, every due checkpoint is
        // still emitted (indices stay contiguous).
        let (mut r, now) = started();
        r.on_timeout(now + cfg().w_cp * 3);
        let mut indices = Vec::new();
        while let Some(Frame::Control(ControlFrame::CheckPoint(cp))) =
            r.poll_transmit(now + cfg().w_cp * 3)
        {
            indices.push(cp.index);
        }
        assert_eq!(indices, vec![1, 2, 3]);
    }
}

// ------------------------------------------------------------ sans-IO host contract
