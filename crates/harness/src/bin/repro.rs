//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                      # run every experiment at full size
//! repro e1 e5                # run a subset
//! repro --quick all          # CI-sized workloads
//! repro --list               # show the experiment index
//! repro --json report.json   # also write machine-readable results
//! repro --trace run.jsonl    # also write a protocol event trace (JSONL)
//! ```
//!
//! `--json` writes one JSON document:
//!
//! ```text
//! {
//!   "schema": "lams-dlc.repro/1",
//!   "quick": bool,
//!   "experiments": [
//!     { "id", "title", "tables", "traces", "notes",   // ExperimentOutput
//!       "perf": {"scheduled", "popped", "cancelled", "peak_depth",
//!                "horizon_s", "wall_secs", "events_per_sec",
//!                "runs"} | null }                      // merged over runs
//!   ]
//! }
//! ```
//!
//! `--trace` installs a global JSONL sink for the duration: every
//! simulation run appends [`telemetry::TraceRecord`]s (one JSON object
//! per line: `{"t", "node", "event", ...}`) to the given path.

use harness::experiments;
use harness::metrics;
use telemetry::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let json_path = flag_value(&args, "--json");
    let trace_path = flag_value(&args, "--trace");
    let mut skip_next = false;
    let ids: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" || *a == "--trace" {
                skip_next = true;
                return false;
            }
            !a.starts_with('-') && *a != "all"
        })
        .cloned()
        .collect();

    if list {
        println!("experiment index (paper artifact → id):");
        for (id, title) in [
            (
                "e1",
                "Retransmission probability & mean periods (P_R, s-bar)",
            ),
            ("e2", "Throughput efficiency vs offered traffic N"),
            ("e3", "Throughput efficiency vs residual BER"),
            ("e4", "Throughput efficiency vs link distance"),
            (
                "e5",
                "Transparent buffer size (B_LAMS finite, B_HDLC = inf)",
            ),
            ("e6", "Sender holding time H_frame vs W_cp"),
            ("e7", "Low-traffic delivery time D_low(N)"),
            ("e8", "Burst-error resilience (Gilbert-Elliott)"),
            ("e9", "Enforced recovery & failure detection"),
            ("e10", "Bounded numbering size"),
            ("e11", "Stop-Go flow control"),
            ("e12", "W_cp x C_depth ablation"),
            ("e13", "Store-and-forward relay chain (end-to-end)"),
            ("e14", "Optimal frame length"),
            ("e15", "Full-duplex operation (no-piggyback cost)"),
            ("e16", "Delay vs offered load (throughput/delay tradeoff)"),
            ("e17", "Go-Back-N baseline collapse"),
        ] {
            println!("  {id:>4}  {title}");
        }
        return;
    }

    if let Some(path) = &trace_path {
        match telemetry::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                telemetry::install_global(std::rc::Rc::new(std::cell::RefCell::new(sink)));
            }
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let run_ids: Vec<&str> = if ids.is_empty() {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut results: Vec<Json> = Vec::new();
    for id in run_ids {
        metrics::perf_take(); // clear any carry-over before the experiment
        match experiments::run_by_id(id, quick) {
            Some(out) => {
                print!("{}", out.render());
                if json_path.is_some() {
                    let mut doc = out.to_json();
                    let perf = match metrics::perf_take() {
                        Some((profile, wall, runs)) => {
                            let mut p = metrics::perf_json(&profile, wall);
                            if let Json::Obj(members) = &mut p {
                                members.push(("runs".into(), runs.into()));
                            }
                            p
                        }
                        None => Json::Null,
                    };
                    if let Json::Obj(members) = &mut doc {
                        members.push(("perf".into(), perf));
                    }
                    results.push(doc);
                }
            }
            None => eprintln!("unknown experiment id: {id} (try --list)"),
        }
    }

    if let Some(path) = &json_path {
        let doc = Json::obj([
            ("schema", Json::from("lams-dlc.repro/1")),
            ("quick", Json::from(quick)),
            ("experiments", Json::from(results)),
        ]);
        if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &trace_path {
        if let Some(sink) = telemetry::uninstall_global() {
            sink.borrow_mut().flush();
            eprintln!("wrote {path} ({} trace records)", sink.borrow().len());
        }
    }
}

/// Value of `--flag <value>` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with('-') => Some(v.clone()),
        _ => {
            eprintln!("{flag} requires a path argument");
            std::process::exit(1);
        }
    }
}
