//! Full-duplex operation: data flowing in *both* directions at once
//! (paper assumption 2: "all links operate in a full-duplex mode").
//!
//! Each node hosts a sender (for its outgoing data) and a receiver (for
//! the incoming flow), and the two share the node's single laser
//! transmitter: the receiver's control frames (checkpoints, Enforced-
//! NAKs) compete with the sender's I-frames for airtime. Control frames
//! get priority — they are small, time-critical, and the paper's no-
//! piggyback rule (assumption 4) makes them unavoidable overhead on the
//! data path.
//!
//! This answers a question the paper's unidirectional analysis leaves
//! open: how much forward goodput does the reverse flow's checkpoint
//! stream cost? (Answer, measured in E15: a fraction of a percent at the
//! paper's parameters — checkpoints are ~40 bytes every `W_cp`.)

use crate::metrics::{Collector, RunReport};
use crate::node::{LamsRx, LamsTx, RxEndpoint, SrRx, SrTx, TxEndpoint};
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficGen;
use bytes::Bytes;
use sim_core::{EventQueue, Instant, RunTimer, SeedSplitter};
use telemetry::TraceEvent;

enum Ev<F> {
    /// SDU arriving at node A (0) or B (1).
    Push(usize, u64),
    /// Frame arriving at node A (0) or B (1).
    Arrive(usize, F, bool),
    Sample,
    Wake,
}

/// Reports for the two directions: `a_to_b` and `b_to_a`.
pub struct DuplexReport {
    /// Metrics of the A→B flow.
    pub a_to_b: RunReport,
    /// Metrics of the B→A flow.
    pub b_to_a: RunReport,
}

/// Drive a symmetric full-duplex scenario: both nodes offer
/// `cfg.n_packets` SDUs to each other under `cfg`'s channel conditions.
pub fn run_duplex<T, R>(
    cfg: &ScenarioConfig,
    mk_tx: impl Fn(usize) -> T,
    mk_rx: impl Fn(usize) -> R,
    protocol: &str,
) -> DuplexReport
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
{
    // Node 0 = A, node 1 = B. txs[i] sends data FROM node i; rxs[i]
    // receives data AT node i. chan[i] carries node i's transmissions.
    let timer = RunTimer::start();
    let trace = telemetry::global_handle("channel");
    let mut txs: Vec<T> = (0..2).map(&mk_tx).collect();
    let mut rxs: Vec<R> = (0..2).map(&mk_rx).collect();
    let (chan_a, chan_b) = cfg.build_channels();
    let mut chans = [chan_a, chan_b];
    let mut gens: Vec<TrafficGen> = (0..2)
        .map(|i| {
            TrafficGen::new(
                cfg.pattern.clone(),
                cfg.n_packets,
                SeedSplitter::new(cfg.seed).stream(2 + i as u64),
            )
        })
        .collect();
    let mut cols = [Collector::new(), Collector::new()];
    let mut q: EventQueue<Ev<T::Frame>> = EventQueue::new();
    let deadline = Instant::ZERO + cfg.deadline;
    let payload = Bytes::from(vec![0u8; cfg.payload_bytes]);

    for i in 0..2 {
        txs[i].start(Instant::ZERO);
        rxs[i].start(Instant::ZERO);
        if let Some((at, id)) = gens[i].next() {
            q.schedule(at, Ev::Push(i, id));
        }
    }
    q.schedule(Instant::ZERO, Ev::Sample);
    q.schedule(Instant::ZERO, Ev::Wake);

    let mut next_wake = Instant::MAX;
    let mut holding = Vec::new();
    let mut finished_at = Instant::ZERO;
    let mut deadline_hit = false;

    while let Some((now, first_ev)) = q.pop() {
        if now > deadline {
            deadline_hit = true;
            finished_at = deadline;
            break;
        }
        let mut ev = first_ev;
        loop {
            match ev {
                Ev::Push(i, id) => {
                    cols[i].on_push(now, id);
                    txs[i].push(id, payload.clone());
                    if let Some((at, nid)) = gens[i].next() {
                        q.schedule(at.max(now), Ev::Push(i, nid));
                    }
                }
                Ev::Arrive(i, f, clean) => {
                    // A frame arriving at node i may belong to either the
                    // data plane (for rxs[i]) or the control plane (for
                    // txs[i]); the endpoints ignore frames that are not
                    // theirs, so offer to both.
                    rxs[i].handle_frame(now, f.clone(), clean);
                    txs[i].handle_frame(now, f, clean);
                }
                Ev::Sample => {
                    for i in 0..2 {
                        cols[i].sample(now, txs[i].buffered(), rxs[i].occupancy(), txs[i].rate());
                    }
                    if now + cfg.sample_every <= deadline {
                        q.schedule(now + cfg.sample_every, Ev::Sample);
                    }
                }
                Ev::Wake => {
                    if next_wake <= now {
                        next_wake = Instant::MAX;
                    }
                }
            }
            if q.peek_time() == Some(now) {
                ev = q.pop().expect("peeked").1;
            } else {
                break;
            }
        }

        for i in 0..2 {
            txs[i].on_timeout(now);
            rxs[i].on_timeout(now);
        }
        // Node i's transmitter serves its receiver's control frames
        // first (priority), then its sender's I-frames; everything lands
        // at the peer 1 − i.
        for i in 0..2 {
            while chans[i].idle(now) {
                let (frame, meta) = if let Some(f) = rxs[i].poll_transmit(now) {
                    let m = R::meta(&f);
                    (f, m)
                } else if let Some(f) = txs[i].poll_transmit(now) {
                    let m = T::meta(&f);
                    (f, m)
                } else {
                    break;
                };
                match chans[i].transmit(now, meta.bytes, meta.is_info) {
                    crate::link::Fate::Arrives { at, clean } => {
                        q.schedule(at, Ev::Arrive(1 - i, frame, clean));
                    }
                    crate::link::Fate::Lost => {
                        let dir = if i == 0 { "fwd" } else { "rev" };
                        trace.emit(now, || TraceEvent::ChannelDrop { dir });
                    }
                }
            }
        }
        for i in 0..2 {
            // Data sent FROM node 1-i is delivered AT node i.
            while let Some((id, _len)) = rxs[i].poll_deliver(now) {
                cols[1 - i].on_deliver(now, id);
            }
            holding.clear();
            txs[i].drain_holding(&mut holding);
            cols[i].on_holding(&holding);
        }

        let done =
            (0..2).all(|i| cols[i].delivered_unique() >= cfg.n_packets && txs[i].buffered() == 0);
        if done || txs.iter().any(|t| t.is_failed()) {
            finished_at = now;
            break;
        }

        let mut want: Option<Instant> = None;
        let mut consider = |c: Option<Instant>| {
            if let Some(t) = c {
                want = Some(want.map_or(t, |w| w.min(t)));
            }
        };
        for i in 0..2 {
            consider(txs[i].poll_timeout());
            consider(rxs[i].poll_timeout());
            if !chans[i].idle(now) {
                consider(Some(chans[i].free_at()));
            }
        }
        if let Some(t) = want {
            let t = if t > now {
                Some(t)
            } else {
                (0..2)
                    .filter(|&i| !chans[i].idle(now))
                    .map(|i| chans[i].free_at())
                    .min()
            };
            if let Some(t) = t {
                debug_assert!(t > now);
                if t < next_wake {
                    next_wake = t;
                    q.schedule(t, Ev::Wake);
                }
            }
        }
        finished_at = now;
    }

    let mut it = cols.into_iter();
    let finish = |col: Collector, i: usize, txs: &[T], rxs: &[R]| {
        col.finish(
            protocol,
            cfg.n_packets,
            finished_at,
            deadline_hit,
            txs[i].is_failed(),
            txs[i].transmissions(),
            txs[i].retransmissions(),
            cfg.t_f(),
            txs[i].extra_stats(),
            rxs[1 - i].extra_stats(),
        )
    };
    // Both directions ran on the one event queue; each report carries
    // the whole run's perf block.
    let profile = q.profile();
    let wall = timer.elapsed_secs();
    crate::metrics::perf_absorb(&profile, wall);
    let stamp = |mut r: RunReport| {
        r.queue = profile;
        r.wall_secs = wall;
        r
    };
    let a_to_b = stamp(finish(it.next().expect("col a"), 0, &txs, &rxs));
    let b_to_a = stamp(finish(it.next().expect("col b"), 1, &txs, &rxs));
    DuplexReport { a_to_b, b_to_a }
}

/// Symmetric full-duplex LAMS-DLC.
pub fn run_duplex_lams(cfg: &ScenarioConfig) -> DuplexReport {
    let lcfg = cfg.lams_config();
    run_duplex(
        cfg,
        |i| {
            let node = if i == 0 { "a.tx" } else { "b.tx" };
            LamsTx::new(
                lams_dlc::Sender::new(lcfg.clone()).with_trace(telemetry::global_handle(node)),
            )
        },
        |i| {
            let node = if i == 0 { "a.rx" } else { "b.rx" };
            LamsRx {
                inner: lams_dlc::Receiver::new(lcfg.clone())
                    .with_trace(telemetry::global_handle(node)),
            }
        },
        "lams-duplex",
    )
}

/// Symmetric full-duplex SR-HDLC.
pub fn run_duplex_sr(cfg: &ScenarioConfig) -> DuplexReport {
    let hcfg = cfg.hdlc_config();
    run_duplex(
        cfg,
        |i| {
            let node = if i == 0 { "a.tx" } else { "b.tx" };
            SrTx::new(hdlc::SrSender::new(hcfg.clone()).with_trace(telemetry::global_handle(node)))
        },
        |i| {
            let node = if i == 0 { "a.rx" } else { "b.rx" };
            SrRx {
                inner: hdlc::SrReceiver::new(hcfg.clone())
                    .with_trace(telemetry::global_handle(node)),
            }
        },
        "sr-duplex",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Duration;

    fn cfg(n: u64, ber: f64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_default();
        c.n_packets = n;
        c.data_residual_ber = ber;
        c.ctrl_residual_ber = ber / 10.0;
        c.deadline = Duration::from_secs(120);
        c
    }

    #[test]
    fn duplex_both_directions_lossless() {
        let r = run_duplex_lams(&cfg(2_000, 1e-6));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
        assert_eq!(r.a_to_b.delivered_unique, 2_000);
        assert_eq!(r.b_to_a.delivered_unique, 2_000);
        assert!(!r.a_to_b.deadline_hit);
    }

    #[test]
    fn duplex_sr_also_lossless() {
        let r = run_duplex_sr(&cfg(1_500, 1e-6));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
    }

    #[test]
    fn directions_are_symmetric() {
        let r = run_duplex_lams(&cfg(3_000, 1e-6));
        let ea = r.a_to_b.efficiency();
        let eb = r.b_to_a.efficiency();
        assert!((ea - eb).abs() / ea < 0.05, "a→b {ea} vs b→a {eb}");
    }

    #[test]
    fn control_overhead_is_small() {
        // Duplex forward efficiency vs unidirectional: the reverse flow's
        // checkpoints steal only a sliver of airtime (~40 B per W_cp
        // against 300 Mbps).
        let c = cfg(5_000, 1e-6);
        let duplex = run_duplex_lams(&c);
        let uni = crate::scenario::run_lams(&c);
        let loss_frac = 1.0 - duplex.a_to_b.efficiency() / uni.efficiency();
        assert!(
            loss_frac < 0.05,
            "duplex cost too high: {:.1}% (duplex {}, uni {})",
            loss_frac * 100.0,
            duplex.a_to_b.efficiency(),
            uni.efficiency()
        );
    }

    #[test]
    fn duplex_under_errors_recovers_both_ways() {
        let r = run_duplex_lams(&cfg(3_000, 1e-5));
        assert_eq!(r.a_to_b.lost, 0);
        assert_eq!(r.b_to_a.lost, 0);
        assert!(r.a_to_b.retransmissions > 0);
        assert!(r.b_to_a.retransmissions > 0);
    }
}
