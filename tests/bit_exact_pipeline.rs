//! Bit-exact integration of the full physical pipeline: LAMS wire format
//! → CRC → convolutional code + interleaver → bit-level channel →
//! Viterbi → CRC verdict. This is the path the fast simulation abstracts
//! into `RxStatus`; here we verify the abstraction is sound.

use bytes::Bytes;
use fec::{BitBuf, LinkCodec};
use lams_dlc::{wire, Frame, InfoFrame, PacketId};
use netsim::channel::{ErrorProcess, GilbertElliott, UniformBer};
use sim_core::{Duration, Instant, SeedSplitter, SimRng};

const MODULUS: u64 = 1 << 16;

fn frame(seq: u64, payload: &[u8]) -> Frame {
    Frame::Info(InfoFrame {
        seq,
        packet_id: PacketId(seq),
        payload: Bytes::copy_from_slice(payload),
    })
}

/// Push one frame through wire-encode → FEC → channel → FEC-decode →
/// wire-decode; returns `Some(frame)` if it survived cleanly, `None` if
/// the CRC (or decode) rejected it.
fn through_channel(
    f: &Frame,
    codec: &LinkCodec,
    chan: &mut dyn ErrorProcess,
    at: Instant,
) -> Option<Frame> {
    let bytes = wire::encode(f, MODULUS);
    let info_bits = BitBuf::from_bytes(&bytes);
    let mut coded = codec.encode(&info_bits);
    chan.corrupt(at, Duration::from_nanos(3), &mut coded);
    match codec.decode(&coded, info_bits.len()) {
        fec::DecodeOutcome::Bits(bits) => {
            let decoded_bytes = bits.to_bytes_exact();
            wire::decode(&decoded_bytes, f_seq(f), MODULUS).ok()
        }
        fec::DecodeOutcome::Malformed => None,
    }
}

fn f_seq(f: &Frame) -> u64 {
    match f {
        Frame::Info(i) => i.seq,
        _ => 0,
    }
}

fn rng(stream: u64) -> SimRng {
    SeedSplitter::new(0xB17).stream(stream)
}

#[test]
fn clean_channel_full_pipeline_roundtrip() {
    let codec = LinkCodec::iframe_default();
    let mut chan = netsim::channel::Lossless;
    for seq in [1u64, 100, 65_535, 70_000] {
        let f = frame(seq, b"payload through the whole stack");
        let out = through_channel(&f, &codec, &mut chan, Instant::ZERO)
            .expect("clean channel must round-trip");
        assert_eq!(out, f);
    }
}

#[test]
fn light_noise_is_fully_corrected_by_fec() {
    // At raw BER 1e-3 the K=7 code + interleaver corrects essentially
    // everything: the residual frame error rate must be far below the raw
    // frame error rate (1 − (1−1e-3)^n ≈ 1).
    let codec = LinkCodec::iframe_default();
    let mut chan = UniformBer::new(1e-3, rng(1));
    let n = 200;
    let mut survived = 0;
    for k in 0..n {
        let f = frame(k + 1, &[0x5A; 256]);
        if let Some(out) = through_channel(&f, &codec, &mut chan, Instant::from_micros(k * 100)) {
            assert_eq!(out, f, "silent corruption!");
            survived += 1;
        }
    }
    assert!(
        survived as f64 / n as f64 > 0.95,
        "residual FER too high: {}/{n}",
        n - survived
    );
}

#[test]
fn heavy_noise_is_detected_never_silently_accepted() {
    // At raw BER 3e-2 the decoder fails often — but the CRC must catch
    // every miscorrection: a decode that passes the CRC must equal the
    // original frame (assumption 9: no undetected errors).
    let codec = LinkCodec::iframe_default();
    let mut chan = UniformBer::new(3e-2, rng(2));
    let n = 150;
    let mut rejected = 0;
    for k in 0..n {
        let f = frame(k + 1, &[0xC3; 128]);
        match through_channel(&f, &codec, &mut chan, Instant::from_micros(k * 100)) {
            Some(out) => assert_eq!(out, f, "undetected corruption at frame {k}"),
            None => rejected += 1,
        }
    }
    assert!(rejected > 0, "expected some rejections at this noise level");
}

#[test]
fn interleaver_rescues_bursts_end_to_end() {
    // A Gilbert–Elliott channel whose bursts are shorter than the
    // interleaver span: end-to-end survival should stay high even though
    // burst-local BER is catastrophic.
    let codec = LinkCodec::iframe_default();
    let mut chan = GilbertElliott::new(
        Duration::from_micros(500),
        Duration::from_nanos(60), // ~20-bit bursts at 3 ns/bit
        1e-5,
        0.5,
        rng(3),
    );
    let n = 100;
    let mut survived = 0;
    for k in 0..n {
        let f = frame(k + 1, &[0x11; 256]);
        if let Some(out) = through_channel(&f, &codec, &mut chan, Instant::from_micros(k * 50)) {
            assert_eq!(out, f);
            survived += 1;
        }
    }
    assert!(
        survived as f64 / n as f64 > 0.9,
        "short bursts should be absorbed: {survived}/{n}"
    );
}

#[test]
fn control_frames_roundtrip_bit_exact() {
    let codec = LinkCodec::iframe_default();
    let mut chan = netsim::channel::Lossless;
    let cp = Frame::Control(lams_dlc::ControlFrame::CheckPoint(lams_dlc::CheckPoint {
        index: 12,
        covered: 900,
        naks: vec![880, 881, 890],
        enforced: true,
        probe: Some(4),
        stop_go: lams_dlc::StopGo::Stop,
    }));
    let bytes = wire::encode(&cp, MODULUS);
    let bits = BitBuf::from_bytes(&bytes);
    let mut coded = codec.encode(&bits);
    chan.corrupt(Instant::ZERO, Duration::from_nanos(3), &mut coded);
    let fec::DecodeOutcome::Bits(out_bits) = codec.decode(&coded, bits.len()) else {
        panic!("malformed");
    };
    let decoded = wire::decode(&out_bits.to_bytes_exact(), 900, MODULUS).unwrap();
    assert_eq!(decoded, cp);
}

#[test]
fn hdlc_wire_through_fec_pipeline() {
    // The baseline's frames run the same physical stack.
    let codec = LinkCodec::iframe_default();
    let f = hdlc::HdlcFrame::Info {
        ns: 42,
        packet_id: 7,
        poll: true,
        payload: Bytes::from_static(b"hdlc over fec"),
    };
    let bytes = hdlc::wire::encode(&f, 2048);
    let bits = BitBuf::from_bytes(&bytes);
    let coded = codec.encode(&bits);
    let fec::DecodeOutcome::Bits(out) = codec.decode(&coded, bits.len()) else {
        panic!("malformed");
    };
    let decoded = hdlc::wire::decode(&out.to_bytes_exact(), 42, 2048).unwrap();
    assert_eq!(decoded, f);
}
