//! The full-duplex link model.
//!
//! Each direction serialises frames at the line rate (expanded by the
//! class's FEC code rate), applies the propagation delay — fixed, or
//! time-varying from an orbital [`orbit::LinkProfile`] — and runs a
//! stochastic error process that decides whether the frame arrives clean,
//! payload-corrupted, or (during an injected outage) not at all.

use crate::channel::{ErrorProcess, GilbertElliott, Lossless, UniformBer};
use fec::FecGrade;
use sim_core::{Duration, Instant, SimRng};

/// Propagation-delay model for one direction.
#[derive(Clone, Debug)]
pub enum DelayModel {
    /// Constant one-way delay.
    Fixed(Duration),
    /// Delay follows an orbital link profile: the range (and hence
    /// delay) evolves over the pass. `t0_offset_s` maps simulation time 0
    /// to an offset inside the profile's window.
    Profile {
        /// The orbital profile.
        profile: orbit::LinkProfile,
        /// Simulation-t0 offset into the profile window, seconds.
        t0_offset_s: f64,
    },
}

impl DelayModel {
    /// One-way delay at simulation time `now`.
    pub fn delay_at(&self, now: Instant) -> Duration {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Profile {
                profile,
                t0_offset_s,
            } => {
                let t = profile.window.start_s + t0_offset_s + now.as_secs_f64();
                Duration::from_secs_f64(profile.one_way_delay_s(t))
            }
        }
    }
}

/// Stochastic error model for one direction.
pub enum ErrorModel {
    /// No errors.
    Clean,
    /// i.i.d. residual errors at a fixed residual BER.
    Uniform(UniformBer),
    /// Gilbert–Elliott burst process (residual BERs per state).
    Burst(GilbertElliott),
}

impl ErrorModel {
    fn frame_error(&mut self, start: Instant, dur: Duration, bits: u64) -> bool {
        match self {
            ErrorModel::Clean => Lossless.frame_error(start, dur, bits),
            ErrorModel::Uniform(u) => u.frame_error(start, dur, bits),
            ErrorModel::Burst(g) => g.frame_error(start, dur, bits),
        }
    }

    /// Build a uniform model at `residual_ber` with the given RNG stream.
    pub fn uniform(residual_ber: f64, rng: SimRng) -> Self {
        if residual_ber <= 0.0 {
            ErrorModel::Clean
        } else {
            ErrorModel::Uniform(UniformBer::new(residual_ber, rng))
        }
    }
}

/// A scheduled outage: every frame whose transmission starts inside
/// `[from, until)` vanishes entirely (tracking loss / occlusion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// Outage start.
    pub from: Instant,
    /// Outage end (exclusive).
    pub until: Instant,
}

/// One direction of the link.
pub struct Channel {
    /// Line rate, bits per second (information bits; the FEC expansion is
    /// applied per frame class).
    pub rate_bps: f64,
    /// Propagation model.
    pub delay: DelayModel,
    /// Error process.
    pub error: ErrorModel,
    /// FEC grade for information frames.
    pub grade_info: FecGrade,
    /// FEC grade for control frames.
    pub grade_ctrl: FecGrade,
    /// Scheduled outages.
    pub outages: Vec<Outage>,
    /// The transmitter is busy until this instant (serialization).
    busy_until: Instant,
    /// Last arrival time (enforces FIFO even if the delay shrinks).
    last_arrival: Instant,
}

/// The fate of a frame offered to the channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Arrives at `at`; `clean` tells whether it survived the channel.
    Arrives {
        /// Arrival instant at the far end.
        at: Instant,
        /// True if no residual error.
        clean: bool,
    },
    /// Vanishes (outage).
    Lost,
}

impl Channel {
    /// Create a channel.
    pub fn new(rate_bps: f64, delay: DelayModel, error: ErrorModel) -> Self {
        assert!(rate_bps > 0.0);
        Channel {
            rate_bps,
            delay,
            error,
            grade_info: FecGrade::IFRAME,
            grade_ctrl: FecGrade::CFRAME,
            outages: Vec::new(),
            busy_until: Instant::ZERO,
            last_arrival: Instant::ZERO,
        }
    }

    /// The transmitter is free at or after this instant.
    pub fn free_at(&self) -> Instant {
        self.busy_until
    }

    /// Is the transmitter idle at `now`?
    pub fn idle(&self, now: Instant) -> bool {
        now >= self.busy_until
    }

    /// Serialization time of a frame of `bytes` payload in class
    /// `is_info` (FEC expansion included).
    pub fn tx_time(&self, bytes: usize, is_info: bool) -> Duration {
        let grade = if is_info {
            self.grade_info
        } else {
            self.grade_ctrl
        };
        let channel_bits = grade.channel_bits(bytes as u64 * 8);
        Duration::from_secs_f64(channel_bits as f64 / self.rate_bps)
    }

    /// Offer a frame for transmission starting at `now` (must be idle).
    /// Returns its fate; the channel becomes busy for the serialization
    /// time.
    pub fn transmit(&mut self, now: Instant, bytes: usize, is_info: bool) -> Fate {
        debug_assert!(self.idle(now), "transmit on busy channel");
        let dur = self.tx_time(bytes, is_info);
        self.busy_until = now + dur;
        if self.outages.iter().any(|o| now >= o.from && now < o.until) {
            return Fate::Lost;
        }
        let bits = (bytes * 8) as u64;
        let errored = self.error.frame_error(now, dur, bits);
        let arrival = (self.busy_until + self.delay.delay_at(now)).max(self.last_arrival);
        self.last_arrival = arrival;
        Fate::Arrives {
            at: arrival,
            clean: !errored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SeedSplitter;

    fn chan(ber: f64) -> Channel {
        Channel::new(
            300e6,
            DelayModel::Fixed(Duration::from_millis(13)),
            ErrorModel::uniform(ber, SeedSplitter::new(1).stream(0)),
        )
    }

    #[test]
    fn serialization_and_delay() {
        let mut c = chan(0.0);
        let now = Instant::ZERO;
        // 1024 bytes info at rate 1/2 FEC → 16384 channel bits at 300 Mbps
        // ≈ 54.6 µs.
        let tx = c.tx_time(1024, true);
        assert!((tx.as_secs_f64() - 16384.0 / 300e6).abs() < 1e-9); // ns rounding
        match c.transmit(now, 1024, true) {
            Fate::Arrives { at, clean } => {
                assert!(clean);
                assert_eq!(at, now + tx + Duration::from_millis(13));
            }
            other => panic!("{other:?}"),
        }
        assert!(!c.idle(now + Duration::from_micros(10)));
        assert!(c.idle(now + tx));
    }

    #[test]
    fn control_frames_expand_more() {
        let c = chan(0.0);
        // Same byte count: control grade (rate 1/4) takes twice as long as
        // info grade (rate 1/2).
        let ti = c.tx_time(64, true);
        let tc = c.tx_time(64, false);
        let diff = tc.as_nanos().abs_diff((ti * 2).as_nanos());
        assert!(diff <= 1, "tc={tc} 2*ti={:?}", ti * 2); // ns rounding
    }

    #[test]
    fn error_rate_roughly_matches() {
        let mut c = chan(1e-4);
        let bits = 8192u64;
        let expect = 1.0 - (1.0 - 1e-4f64).powi(bits as i32);
        let mut now = Instant::ZERO;
        let n = 20_000;
        let mut dirty = 0;
        for _ in 0..n {
            now = c.free_at().max(now);
            if let Fate::Arrives { clean: false, .. } = c.transmit(now, (bits / 8) as usize, true) {
                dirty += 1
            }
            now = c.free_at();
        }
        let freq = dirty as f64 / n as f64;
        assert!((freq - expect).abs() < 0.02, "freq={freq} expect={expect}");
    }

    #[test]
    fn outage_swallows_frames() {
        let mut c = chan(0.0);
        c.outages.push(Outage {
            from: Instant::from_millis(1),
            until: Instant::from_millis(2),
        });
        assert!(matches!(
            c.transmit(Instant::from_nanos(0), 100, true),
            Fate::Arrives { .. }
        ));
        let t1 = c.free_at().max(Instant::from_millis(1));
        assert_eq!(c.transmit(t1, 100, true), Fate::Lost);
        let t2 = c.free_at().max(Instant::from_millis(2));
        assert!(matches!(c.transmit(t2, 100, true), Fate::Arrives { .. }));
    }

    #[test]
    fn fifo_preserved_with_shrinking_delay() {
        // If the range shrinks between two frames, the second must not
        // overtake the first.
        let a = orbit::Satellite::new(1000.0, 80.0, 0.0, 0.0);
        let b = orbit::Satellite::new(1000.0, 80.0, 90.0, 0.0);
        let windows = orbit::visibility_windows(
            &a,
            &b,
            2.0 * a.period_s(),
            5.0,
            &orbit::LinkConstraints::default(),
        );
        let profile = orbit::LinkProfile::build(&a, &b, windows[0], 5.0, 0.0);
        let mut c = Channel::new(
            300e6,
            DelayModel::Profile {
                profile,
                t0_offset_s: 0.0,
            },
            ErrorModel::Clean,
        );
        let mut now = Instant::ZERO;
        let mut last = Instant::ZERO;
        for _ in 0..1000 {
            now = c.free_at().max(now) + Duration::from_millis(100);
            if let Fate::Arrives { at, .. } = c.transmit(now, 1024, true) {
                assert!(at >= last, "reordered arrival");
                last = at;
            }
        }
    }
}
