//! Bit-level channel error processes.
//!
//! Two processes model the laser-link impairments from §2.1 of the paper:
//!
//! * [`UniformBer`] — i.i.d. random bit errors (quantum noise, preamplifier
//!   thermal noise, dark current, detector excess noise, background light);
//! * [`GilbertElliott`] — a continuous-time two-state Markov chain for
//!   burst errors (beam mispointing and tracking loss): a *good* state with
//!   low BER and a *bad* state with high BER, exponential sojourn times.
//!
//! Both expose two APIs:
//!
//! * [`ErrorProcess::frame_error`] — the fast path: sample whether a frame
//!   occupying `[start, start+duration)` with `bits` payload bits suffers at
//!   least one uncorrected error. This is what the discrete-event harness
//!   uses; it is exact with respect to the process definition (the per-state
//!   bit counts are integrated over the frame interval).
//! * [`ErrorProcess::corrupt`] — the bit-exact path: flip individual bits of
//!   a [`BitBuf`], used in FEC end-to-end tests and the codec experiments.
//!
//! Processes are stateful in time and must be driven with non-decreasing
//! `start` values (frames on one link direction are serialized, so this
//! holds by construction in the harness).

use fec::BitBuf;
use sim_core::{Duration, Instant, SimRng};

/// A stochastic bit-error process on one link direction.
pub trait ErrorProcess {
    /// Sample whether a frame transmitted over `[start, start+duration)`
    /// containing `bits` bits experiences one or more bit errors.
    fn frame_error(&mut self, start: Instant, duration: Duration, bits: u64) -> bool;

    /// Flip bits of `buf` in place for a transmission starting at `start`
    /// where each bit occupies `bit_time` on the wire.
    fn corrupt(&mut self, start: Instant, bit_time: Duration, buf: &mut BitBuf);

    /// Long-run average bit error rate of the process (for reporting and
    /// for deriving analytic `P_F`/`P_C`).
    fn mean_ber(&self) -> f64;
}

/// Independent, identically distributed bit errors at a fixed BER.
#[derive(Clone, Debug)]
pub struct UniformBer {
    ber: f64,
    rng: SimRng,
}

impl UniformBer {
    /// Create a uniform-error process with bit error rate `ber` in [0, 1].
    pub fn new(ber: f64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER out of range: {ber}");
        UniformBer { ber, rng }
    }

    /// The configured BER.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Probability that a frame of `bits` bits has at least one error:
    /// `1 - (1 - ber)^bits`, computed stably in log space.
    pub fn frame_error_prob(ber: f64, bits: u64) -> f64 {
        if ber <= 0.0 || bits == 0 {
            return 0.0;
        }
        if ber >= 1.0 {
            return 1.0;
        }
        1.0 - f64::exp(bits as f64 * f64::ln_1p(-ber))
    }
}

impl ErrorProcess for UniformBer {
    fn frame_error(&mut self, _start: Instant, _duration: Duration, bits: u64) -> bool {
        self.rng.chance(Self::frame_error_prob(self.ber, bits))
    }

    fn corrupt(&mut self, _start: Instant, _bit_time: Duration, buf: &mut BitBuf) {
        if self.ber <= 0.0 {
            return;
        }
        // Geometric skip sampling: jump straight to the next errored bit.
        let mut i = self.rng.geometric(self.ber);
        while (i as usize) < buf.len() {
            buf.toggle(i as usize);
            i += 1 + self.rng.geometric(self.ber);
        }
    }

    fn mean_ber(&self) -> f64 {
        self.ber
    }
}

/// Which state the Gilbert–Elliott chain is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeState {
    /// Quiescent channel: low residual BER.
    Good,
    /// Burst (mispointing / tracking loss): high BER.
    Bad,
}

/// Continuous-time Gilbert–Elliott burst-error process.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// Mean sojourn in the good state.
    mean_good: Duration,
    /// Mean sojourn in the bad state (the mean burst length in time).
    mean_bad: Duration,
    ber_good: f64,
    ber_bad: f64,
    state: GeState,
    /// Time at which the current state ends (exclusive).
    state_until: Instant,
    clock: Instant,
    rng: SimRng,
}

impl GilbertElliott {
    /// Create a burst process.
    ///
    /// * `mean_good`, `mean_bad` — mean sojourn times of the two states
    ///   (exponentially distributed);
    /// * `ber_good`, `ber_bad` — per-state bit error rates.
    pub fn new(
        mean_good: Duration,
        mean_bad: Duration,
        ber_good: f64,
        ber_bad: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            !mean_good.is_zero() && !mean_bad.is_zero(),
            "sojourn means must be positive"
        );
        assert!((0.0..=1.0).contains(&ber_good) && (0.0..=1.0).contains(&ber_bad));
        let first = Duration::from_secs_f64(rng.exponential(mean_good.as_secs_f64()));
        GilbertElliott {
            mean_good,
            mean_bad,
            ber_good,
            ber_bad,
            state: GeState::Good,
            state_until: Instant::ZERO + first,
            clock: Instant::ZERO,
            rng,
        }
    }

    /// Current state at the internal clock.
    pub fn state(&self) -> GeState {
        self.state
    }

    /// Stationary probability of being in the bad state.
    pub fn bad_fraction(&self) -> f64 {
        let g = self.mean_good.as_secs_f64();
        let b = self.mean_bad.as_secs_f64();
        b / (g + b)
    }

    fn advance_to(&mut self, t: Instant) {
        debug_assert!(t >= self.clock, "GilbertElliott driven backwards in time");
        while self.state_until <= t {
            let start = self.state_until;
            self.state = match self.state {
                GeState::Good => GeState::Bad,
                GeState::Bad => GeState::Good,
            };
            let mean = match self.state {
                GeState::Good => self.mean_good,
                GeState::Bad => self.mean_bad,
            };
            let sojourn = Duration::from_secs_f64(self.rng.exponential(mean.as_secs_f64()));
            // Guarantee progress even if the exponential rounds to zero.
            self.state_until = start + sojourn.max(Duration::from_nanos(1));
        }
        self.clock = t;
    }

    fn ber_now(&self) -> f64 {
        match self.state {
            GeState::Good => self.ber_good,
            GeState::Bad => self.ber_bad,
        }
    }

    /// Walk the state trajectory over `[start, start+duration)` and return
    /// `log(P[no bit error])` for a frame of `bits` uniformly spread bits.
    fn log_p_clean(&mut self, start: Instant, duration: Duration, bits: u64) -> f64 {
        self.advance_to(start);
        if bits == 0 {
            return 0.0;
        }
        let end = start + duration;
        if duration.is_zero() {
            // Point transmission: all bits see the current state.
            return bits as f64 * f64::ln_1p(-self.ber_now());
        }
        let total = duration.as_secs_f64();
        let mut log_p = 0.0;
        let mut cursor = start;
        while cursor < end {
            let seg_end = self.state_until.min(end);
            let frac = seg_end.duration_since(cursor).as_secs_f64() / total;
            let bits_here = bits as f64 * frac;
            log_p += bits_here * f64::ln_1p(-self.ber_now());
            cursor = seg_end;
            if cursor < end {
                self.advance_to(cursor);
            }
        }
        self.clock = end;
        log_p
    }
}

impl ErrorProcess for GilbertElliott {
    fn frame_error(&mut self, start: Instant, duration: Duration, bits: u64) -> bool {
        let log_p_clean = self.log_p_clean(start, duration, bits);
        let p_err = 1.0 - f64::exp(log_p_clean);
        self.rng.chance(p_err)
    }

    fn corrupt(&mut self, start: Instant, bit_time: Duration, buf: &mut BitBuf) {
        for i in 0..buf.len() {
            let t = start + bit_time * i as u64;
            self.advance_to(t);
            if self.rng.chance(self.ber_now()) {
                buf.toggle(i);
            }
        }
    }

    fn mean_ber(&self) -> f64 {
        let pb = self.bad_fraction();
        self.ber_good * (1.0 - pb) + self.ber_bad * pb
    }
}

/// A perfectly clean channel; useful as a control in experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lossless;

impl ErrorProcess for Lossless {
    fn frame_error(&mut self, _: Instant, _: Duration, _: u64) -> bool {
        false
    }
    fn corrupt(&mut self, _: Instant, _: Duration, _: &mut BitBuf) {}
    fn mean_ber(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SeedSplitter;

    fn rng(stream: u64) -> SimRng {
        SeedSplitter::new(0xFEC).stream(stream)
    }

    #[test]
    fn frame_error_prob_formula() {
        assert_eq!(UniformBer::frame_error_prob(0.0, 1000), 0.0);
        assert_eq!(UniformBer::frame_error_prob(1.0, 1), 1.0);
        assert_eq!(UniformBer::frame_error_prob(0.5, 0), 0.0);
        let p = UniformBer::frame_error_prob(1e-6, 8000);
        // ≈ 8e-3 for small ber·bits
        assert!((p - 7.968e-3).abs() < 1e-4, "p={p}");
    }

    #[test]
    fn uniform_frame_error_frequency() {
        let mut ch = UniformBer::new(1e-4, rng(1));
        let bits = 10_000u64; // p_frame ≈ 0.632
        let expect = UniformBer::frame_error_prob(1e-4, bits);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| ch.frame_error(Instant::ZERO, Duration::from_micros(10), bits))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - expect).abs() < 0.01, "freq={freq} expect={expect}");
    }

    #[test]
    fn uniform_corrupt_density() {
        let mut ch = UniformBer::new(0.01, rng(2));
        let n_bits = 100_000;
        let clean = BitBuf::from_bits(&vec![false; n_bits]);
        let mut buf = clean.clone();
        ch.corrupt(Instant::ZERO, Duration::from_nanos(1), &mut buf);
        let flips = buf.hamming_distance(&clean);
        let rate = flips as f64 / n_bits as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate={rate}");
    }

    #[test]
    fn uniform_zero_ber_never_errors() {
        let mut ch = UniformBer::new(0.0, rng(3));
        for _ in 0..100 {
            assert!(!ch.frame_error(Instant::ZERO, Duration::from_micros(1), 1 << 20));
        }
    }

    #[test]
    fn ge_stationary_fraction() {
        let ge = GilbertElliott::new(
            Duration::from_millis(90),
            Duration::from_millis(10),
            0.0,
            0.5,
            rng(4),
        );
        assert!((ge.bad_fraction() - 0.1).abs() < 1e-12);
        assert!((ge.mean_ber() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ge_bursts_cluster_errors() {
        // With ber_good = 0 every error falls inside a burst, so a frame
        // fully inside a good period is always clean.
        let mut ge = GilbertElliott::new(
            Duration::from_millis(100),
            Duration::from_millis(5),
            0.0,
            0.2,
            rng(5),
        );
        let mut errors_per_window = Vec::new();
        let frame = Duration::from_micros(100);
        for k in 0..20_000u64 {
            let t = Instant::from_nanos(k * 100_000);
            errors_per_window.push(ge.frame_error(t, frame, 1000) as u32);
        }
        // Burstiness: errors should be far more clustered than i.i.d.
        // Compare the count of adjacent error pairs against independence.
        let total: u32 = errors_per_window.iter().sum();
        let p = total as f64 / errors_per_window.len() as f64;
        let adjacent = errors_per_window
            .windows(2)
            .filter(|w| w[0] == 1 && w[1] == 1)
            .count();
        let expected_iid = p * p * errors_per_window.len() as f64;
        assert!(
            adjacent as f64 > 3.0 * expected_iid,
            "adjacent={adjacent} expected_iid={expected_iid:.1}"
        );
    }

    #[test]
    fn ge_long_run_error_rate_matches_mean_ber() {
        let mut ge = GilbertElliott::new(
            Duration::from_millis(20),
            Duration::from_millis(20),
            0.001,
            0.05,
            rng(6),
        );
        let n_bits = 2_000_000usize;
        let clean = BitBuf::from_bits(&vec![false; n_bits]);
        let mut buf = clean.clone();
        // Bit time 100ns → 200ms total, many state transitions.
        ge.corrupt(Instant::ZERO, Duration::from_nanos(100), &mut buf);
        let rate = buf.hamming_distance(&clean) as f64 / n_bits as f64;
        let expect = 0.0255;
        assert!(
            (rate - expect).abs() / expect < 0.25,
            "rate={rate} expect={expect}"
        );
    }

    #[test]
    fn ge_monotone_time_requirement_holds_for_sequential_frames() {
        let mut ge = GilbertElliott::new(
            Duration::from_millis(1),
            Duration::from_millis(1),
            0.0,
            1.0,
            rng(7),
        );
        let mut t = Instant::ZERO;
        for _ in 0..1000 {
            let d = Duration::from_micros(10);
            let _ = ge.frame_error(t, d, 100);
            t += d;
        }
    }

    #[test]
    fn lossless_is_lossless() {
        let mut ch = Lossless;
        assert!(!ch.frame_error(Instant::ZERO, Duration::ZERO, u64::MAX));
        let mut buf = BitBuf::from_bytes(&[0xAA; 16]);
        let orig = buf.clone();
        ch.corrupt(Instant::ZERO, Duration::from_nanos(1), &mut buf);
        assert_eq!(buf, orig);
        assert_eq!(ch.mean_ber(), 0.0);
    }

    #[test]
    fn ge_zero_duration_frame_uses_point_state() {
        let mut ge = GilbertElliott::new(
            Duration::from_secs(1000), // effectively always good
            Duration::from_nanos(1),
            0.0,
            1.0,
            rng(8),
        );
        assert!(!ge.frame_error(Instant::from_nanos(5), Duration::ZERO, 1000));
    }
}
