//! The experiment runner behind the `repro` binary: CLI parsing,
//! parallel experiment fan-out, and machine-readable report assembly.
//!
//! Splitting this out of `main` makes every piece unit-testable: bad
//! flags are rejected with a usage message (exit code 2 in the binary),
//! experiments fan out across [`crate::parallel::map`] workers and merge
//! deterministically in experiment order, and the `lams-dlc.repro/1`
//! JSON document is built the same way at any worker count.

use crate::experiments::{self, ExperimentOutput};
use crate::metrics;
use crate::parallel;
use crate::profile_report::ExperimentProfile;
use sim_core::QueueProfile;
use telemetry::Json;

/// Usage text printed on `--help`-worthy mistakes.
pub const USAGE: &str = "\
usage: repro [OPTIONS] [EXPERIMENT_ID...]

  repro                      # run every experiment at full size
  repro e1 e5                # run a subset
  repro --quick all          # CI-sized workloads
  repro --list               # show the experiment index
  repro --json report.json   # also write machine-readable results
  repro --trace run.jsonl    # also write a protocol event trace (JSONL)
  repro --metrics m.jsonl    # also write windowed time-series metrics (JSONL)
  repro --profile p.json     # self-profile each experiment (span trees)
  repro --workers 4          # run experiments on 4 worker threads (0 = auto)
  repro --shards 8 e18       # split sharded-family simulations over 8 cores
  repro --shards 3 --timeline t.json e18   # Perfetto superstep timeline

options:
  -q, --quick            shrink workloads for CI
  -l, --list             print the experiment index and exit
      --json <path>      write the lams-dlc.repro/1 JSON document
      --trace <path>     write a JSONL protocol event trace
      --metrics <path>   write windowed per-link metric series (JSONL)
      --profile <path>         write the lams-dlc.profile/1 span-tree document
      --profile-folded <path>  write collapsed stacks for flamegraph tools
      --workers <n>      worker threads for the experiment fan-out (default 1)
      --shards <n>       threads per sharded simulation (default 1; must be >= 1)
      --timeline <path>  write the lams-dlc.timeline/1 Chrome trace-event JSON
                         (superstep spans per shard; open in Perfetto)

Profiling (--profile / --profile-folded) measures wall-clock spans and
prints a per-experiment breakdown; simulated results are byte-identical
with profiling on or off. Within a profiled experiment the inner
simulation fan-out runs serially so span times nest correctly;
experiments themselves still spread across --workers.

--shards splits each simulation of the sharded experiment family (e18)
across conservative parallel-DES threads; results are byte-identical at
any shard count (only the perf block's wall clock differs).

--timeline captures the sharded runtime's superstep accounting as a
Chrome trace-event document (one track per shard, counter tracks for
event rate / queue depth / grant horizon) loadable in Perfetto. Span
placement uses the wall clock; every span argument (grants, critical
cuts, event counts) is deterministic.

Every run is audited live against the LAMS-DLC protocol invariants;
violations are printed to stderr and fail the run (exit 1).
";

/// The experiment index: `(id, title)` in run order.
pub const INDEX: &[(&str, &str)] = &[
    (
        "e1",
        "Retransmission probability & mean periods (P_R, s-bar)",
    ),
    ("e2", "Throughput efficiency vs offered traffic N"),
    ("e3", "Throughput efficiency vs residual BER"),
    ("e4", "Throughput efficiency vs link distance"),
    (
        "e5",
        "Transparent buffer size (B_LAMS finite, B_HDLC = inf)",
    ),
    ("e6", "Sender holding time H_frame vs W_cp"),
    ("e7", "Low-traffic delivery time D_low(N)"),
    ("e8", "Burst-error resilience (Gilbert-Elliott)"),
    ("e9", "Enforced recovery & failure detection"),
    ("e10", "Bounded numbering size"),
    ("e11", "Stop-Go flow control"),
    ("e12", "W_cp x C_depth ablation"),
    ("e13", "Store-and-forward relay chain (end-to-end)"),
    ("e14", "Optimal frame length"),
    ("e15", "Full-duplex operation (no-piggyback cost)"),
    ("e16", "Delay vs offered load (throughput/delay tradeoff)"),
    ("e17", "Go-Back-N baseline collapse"),
    (
        "e18",
        "Sharded relay chain (conservative parallel execution)",
    ),
];

/// Parsed `repro` command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliArgs {
    /// Shrink workloads for CI.
    pub quick: bool,
    /// Print the experiment index and exit.
    pub list: bool,
    /// Path for the JSON report, if requested.
    pub json: Option<String>,
    /// Path for the JSONL trace, if requested.
    pub trace: Option<String>,
    /// Path for the windowed metrics JSONL, if requested.
    pub metrics: Option<String>,
    /// Path for the `lams-dlc.profile/1` span-tree document, if
    /// requested. Either profile flag turns self-profiling on.
    pub profile: Option<String>,
    /// Path for the collapsed-stack flamegraph lines, if requested.
    pub profile_folded: Option<String>,
    /// Worker threads for the experiment fan-out (0 = auto).
    pub workers: usize,
    /// Threads per sharded simulation (≥ 1; the parser rejects 0).
    pub shards: usize,
    /// Path for the `lams-dlc.timeline/1` Chrome trace-event document,
    /// if requested.
    pub timeline: Option<String>,
    /// Explicit experiment ids (empty = all).
    pub ids: Vec<String>,
}

impl CliArgs {
    /// True when any profile output was requested — turns on
    /// self-profiling for the run.
    pub fn profiled(&self) -> bool {
        self.profile.is_some() || self.profile_folded.is_some()
    }
}

/// Parse a `repro` argument list. Unknown flags and flags missing their
/// value are errors (the binary prints the message plus [`USAGE`] and
/// exits non-zero).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut cli = CliArgs {
        workers: 1,
        shards: 1,
        ..CliArgs::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
            match it.next() {
                Some(v) if !v.starts_with('-') => Ok(v.clone()),
                _ => Err(format!("{flag} requires a value")),
            }
        };
        match arg.as_str() {
            "--quick" | "-q" => cli.quick = true,
            "--list" | "-l" => cli.list = true,
            "--json" => cli.json = Some(value("--json", &mut it)?),
            "--trace" => cli.trace = Some(value("--trace", &mut it)?),
            "--metrics" => cli.metrics = Some(value("--metrics", &mut it)?),
            "--profile" => cli.profile = Some(value("--profile", &mut it)?),
            "--profile-folded" => cli.profile_folded = Some(value("--profile-folded", &mut it)?),
            "--timeline" => cli.timeline = Some(value("--timeline", &mut it)?),
            "--workers" => {
                let v = value("--workers", &mut it)?;
                cli.workers = v
                    .parse()
                    .map_err(|_| format!("--workers expects a number, got {v:?}"))?;
            }
            "--shards" => {
                let v = value("--shards", &mut it)?;
                cli.shards = v
                    .parse()
                    .map_err(|_| format!("--shards expects a number, got {v:?}"))?;
                // Unlike --workers, 0 is not "auto": a sharded run's
                // shape is part of its identity contract, so the count
                // must be explicit.
                if cli.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "all" => {}
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            id => cli.ids.push(id.to_string()),
        }
    }
    Ok(cli)
}

/// Fail early when an output path points into a directory that does not
/// exist: a typo'd `--json`/`--trace`/`--metrics` destination should be
/// a usage error before any experiment runs, not an I/O error after
/// minutes of simulation.
pub fn validate_paths(cli: &CliArgs) -> Result<(), String> {
    let targets = [
        ("--json", &cli.json),
        ("--trace", &cli.trace),
        ("--metrics", &cli.metrics),
        ("--profile", &cli.profile),
        ("--profile-folded", &cli.profile_folded),
        ("--timeline", &cli.timeline),
    ];
    for (flag, path) in targets {
        let Some(path) = path else { continue };
        let parent = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."));
        if !parent.is_dir() {
            return Err(format!(
                "{flag} {path}: directory {} does not exist",
                parent.display()
            ));
        }
    }
    Ok(())
}

/// One experiment's outcome: rendered output plus the merged perf
/// accumulator of every simulation it ran.
pub struct ExperimentRun {
    /// The experiment id as requested.
    pub id: String,
    /// The output, or `None` for an unknown id.
    pub output: Option<ExperimentOutput>,
    /// `(merged queue profile, wall seconds, runs)` — `None` when the
    /// experiment ran no simulations (or the id was unknown).
    pub perf: Option<(QueueProfile, f64, u64)>,
    /// The live protocol audit + windowed metrics for this experiment's
    /// simulation runs.
    pub audit: monitor::MonitorReport,
    /// The wall-clock self-profile, when the run was profiled.
    pub profile: Option<ExperimentProfile>,
    /// Superstep accounting + per-run spans — `None` unless the
    /// experiment ran sharded simulations (the e18 family).
    pub shard: Option<metrics::ShardAcc>,
}

/// The `&'static str` form of a known experiment id (trace node labels
/// and [`telemetry::TraceEvent::ExperimentStarted`] ids are interned).
fn static_id(id: &str) -> Option<&'static str> {
    experiments::ALL.iter().copied().find(|s| *s == id)
}

/// Run `ids` through the experiment suite on the configured worker
/// pool, returning results in request order. Each experiment drains its
/// own thread's perf accumulator, so per-experiment perf blocks are
/// identical at any worker count.
///
/// Every experiment runs with a live [`monitor::Monitor`] spliced into
/// the telemetry stream: the thread's current sink (the serial JSONL
/// sink, or the per-item buffer a parallel worker installed) is wrapped
/// in a fan-out that also feeds the monitor, and restored afterwards.
/// The monitor audits the protocol invariants as events arrive and
/// accumulates windowed metric series; both come back in
/// [`ExperimentRun::audit`]. Because one monitor serves exactly one
/// experiment and reports merge in request order, the audit verdicts
/// and metric lines are identical at any worker count.
pub fn run_experiments(ids: &[String], quick: bool) -> Vec<ExperimentRun> {
    run_experiments_with(ids, quick, false)
}

/// [`run_experiments`] with self-profiling optionally enabled. When
/// `profiled`, each experiment installs a thread-local span profiler
/// *before* constructing its monitor (span handles are resolved at
/// construction), wraps the experiment body in a root `"experiment"`
/// span, and drains the profiler into [`ExperimentRun::profile`].
/// Profiling reads only the wall clock, so every simulated output —
/// fingerprints, audit verdicts, attribution — is byte-identical with
/// it on or off.
pub fn run_experiments_with(ids: &[String], quick: bool, profiled: bool) -> Vec<ExperimentRun> {
    use std::cell::RefCell;
    use std::rc::Rc;
    parallel::map(ids.to_vec(), move |id| {
        metrics::perf_take(); // clear any carry-over before the experiment
        metrics::shard_take();
        let wall = if profiled {
            profile::install();
            Some((std::time::Instant::now(), profile::alloc::snapshot()))
        } else {
            None
        };
        // The tree's root (a no-op guard when unprofiled), held across
        // monitor construction and report drain so even microsecond
        // analysis-only experiments meet the span-coverage floor.
        let root = profile::span("experiment");
        let mon = Rc::new(RefCell::new(monitor::Monitor::new(
            monitor::MonitorConfig::default(),
        )));
        let prev = telemetry::global_sink();
        let mut sinks: Vec<telemetry::SharedSink> = Vec::new();
        sinks.push(mon.clone());
        sinks.extend(prev.clone());
        telemetry::install_global(Rc::new(RefCell::new(telemetry::FanoutSink::new(sinks))));
        if let Some(sid) = static_id(&id) {
            telemetry::global_handle("runner").emit(sim_core::Instant::ZERO, || {
                telemetry::TraceEvent::ExperimentStarted { id: sid }
            });
        }
        let output = experiments::run_by_id(&id, quick);
        match prev {
            Some(p) => {
                telemetry::install_global(p);
            }
            None => {
                telemetry::uninstall_global();
            }
        }
        let audit = mon.borrow_mut().take_report();
        drop(root);
        let profile = wall.map(|(t0, alloc0)| {
            let report = profile::take().unwrap_or_default();
            let alloc =
                profile::alloc::snapshot().map(|now| now.since(&alloc0.unwrap_or_default()));
            ExperimentProfile::from_report(report, t0.elapsed().as_nanos() as u64, alloc)
        });
        ExperimentRun {
            id,
            perf: metrics::perf_take(),
            shard: metrics::shard_take(),
            output,
            audit,
            profile,
        }
    })
}

/// Build the `lams-dlc.repro/1` JSON document over completed runs
/// (unknown ids are skipped; the binary reports them separately).
pub fn report_json(runs: &[ExperimentRun], quick: bool) -> Json {
    let results: Vec<Json> = runs
        .iter()
        .filter_map(|run| {
            let out = run.output.as_ref()?;
            let mut doc = out.to_json();
            let perf = match &run.perf {
                Some((profile, wall, runs)) => {
                    let mut p = metrics::perf_json(profile, *wall);
                    if let Json::Obj(members) = &mut p {
                        members.push(("runs".into(), (*runs).into()));
                    }
                    p
                }
                None => Json::Null,
            };
            let metrics = run
                .audit
                .experiment(&run.id)
                .map(|e| e.to_json())
                .unwrap_or(Json::Null);
            // Integer-only block, so the offline `trace-tools
            // attribution` replay reproduces it byte-for-byte.
            let attribution = run
                .audit
                .experiment(&run.id)
                .map(|e| e.attribution.to_json())
                .unwrap_or(Json::Null);
            // Wall-clock-bearing like perf, so determinism comparisons
            // strip it the same way (see check_repro.py --identical).
            let profile = match &run.profile {
                Some(p) => p.to_json(),
                None => Json::Null,
            };
            // Superstep accounting: deterministic counts plus
            // wall-exempt busy/blocked vectors (see shard_json).
            let shard_profile = match &run.shard {
                Some(acc) => metrics::shard_json(&acc.profile),
                None => Json::Null,
            };
            if let Json::Obj(members) = &mut doc {
                members.push(("perf".into(), perf));
                members.push(("metrics".into(), metrics));
                members.push(("attribution".into(), attribution));
                members.push(("profile".into(), profile));
                members.push(("shard_profile".into(), shard_profile));
            }
            Some(doc)
        })
        .collect();
    Json::obj([
        ("schema", Json::from("lams-dlc.repro/1")),
        ("quick", Json::from(quick)),
        ("experiments", Json::from(results)),
    ])
}

/// Render one experiment's latency budget as a human-readable table:
/// where delivered SDUs spent their time, phase by phase, plus the
/// resolution-vs-analytic-bound verdict. Empty when the experiment
/// attributed nothing (e.g. HDLC-only baselines).
pub fn attribution_table(id: &str, a: &monitor::AttributionAgg) -> String {
    use std::fmt::Write as _;
    if a.sdus == 0 && a.incomplete == 0 && a.reseq.count == 0 {
        return String::new();
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "latency budget [{id}]: {} SDU(s) ({} clean, {} errored, {} incomplete)",
        a.sdus, a.clean, a.errored, a.incomplete
    );
    let _ = writeln!(
        s,
        "  {:<14} {:>7} {:>12} {:>10} {:>10} {:>7}",
        "phase", "sdus", "total ms", "mean ms", "max ms", "share"
    );
    let total = a.latency_total_ns.max(1) as f64;
    for (name, p) in monitor::PHASE_NAMES.iter().zip(a.phases.iter()) {
        if p.count == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  {:<14} {:>7} {:>12.3} {:>10.3} {:>10.3} {:>6.1}%",
            name,
            p.count,
            p.total_ns as f64 / 1e6,
            p.total_ns as f64 / 1e6 / p.count as f64,
            p.max_ns as f64 / 1e6,
            100.0 * p.total_ns as f64 / total,
        );
    }
    if a.reseq.count > 0 {
        let _ = writeln!(
            s,
            "  {:<14} {:>7} {:>12.3} {:>10.3} {:>10.3}   (post-delivery)",
            "reseq_hold",
            a.reseq.count,
            a.reseq.total_ns as f64 / 1e6,
            a.reseq.total_ns as f64 / 1e6 / a.reseq.count as f64,
            a.reseq.max_ns as f64 / 1e6,
        );
    }
    if a.max_nak_repeats > 0 {
        let _ = writeln!(s, "  worst NAK cumulation repeats: {}", a.max_nak_repeats);
    }
    if a.res_cycles > 0 {
        let _ = writeln!(
            s,
            "  resolution: {} NAK cycle(s), worst {:.3} ms {} analytic bound {:.3} ms ({} violation(s))",
            a.res_cycles,
            a.res_max_ns as f64 / 1e6,
            if a.res_violations == 0 { "<=" } else { ">" },
            a.res_bound_ns as f64 / 1e6,
            a.res_violations,
        );
    }
    if a.audit_failures > 0 {
        let _ = writeln!(
            s,
            "  WARNING: {} SDU(s) failed the phase-sum audit",
            a.audit_failures
        );
    }
    s
}

/// Render one experiment's superstep accounting as a human-readable
/// table, printed next to the latency budget when the run was sharded.
/// Efficiency/imbalance read the wall clock; everything else is
/// deterministic. `wall_secs` itself is deliberately *not* printed:
/// at one shard every figure here is a deterministic constant, which
/// keeps default stdout byte-identical across `--workers` counts (the
/// wall clock lives in the JSON report's exempt fields instead).
pub fn shard_table(id: &str, p: &netsim::ShardProfile) -> String {
    use std::fmt::Write as _;
    if p.supersteps == 0 {
        return String::new();
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "shard efficiency [{id}]: {} shard(s), {} superstep(s), {} window(s) ({} null)",
        p.shards, p.supersteps, p.windows, p.null_windows
    );
    let _ = writeln!(
        s,
        "  parallel efficiency {:>6.1}%   load imbalance {:.2}x   lookahead utilization {:>5.1}%",
        100.0 * p.efficiency(),
        p.imbalance(),
        100.0 * p.lookahead_utilization(),
    );
    let _ = writeln!(
        s,
        "  events {}   inbound {}   outbound {}",
        p.events, p.inbound, p.outbound
    );
    if !p.critical_cuts.is_empty() {
        let cuts: Vec<String> = p
            .critical_cuts
            .iter()
            .map(|(link, count)| format!("link{link} x{count}"))
            .collect();
        let _ = writeln!(s, "  critical cuts: {}", cuts.join(", "));
    }
    s
}

/// Build the `lams-dlc.timeline/1` Chrome trace-event document over
/// completed runs: one track group per sharded simulation, labelled
/// `"<id> run <k>"` in run order — the same labels the offline
/// `trace-tools timeline` replay reconstructs from the trace stream.
pub fn timeline_json(runs: &[ExperimentRun]) -> Json {
    let mut groups = Vec::new();
    for run in runs {
        let Some(acc) = &run.shard else { continue };
        for (k, spans) in acc.runs.iter().enumerate() {
            if spans.is_empty() {
                continue;
            }
            groups.push(telemetry::TimelineGroup {
                label: format!("{} run {k}", run.id),
                spans: spans.clone(),
            });
        }
    }
    telemetry::timeline_doc(&groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let cli = parse_args(&args(&[
            "--quick",
            "--json",
            "r.json",
            "--trace",
            "t.jsonl",
            "--metrics",
            "m.jsonl",
            "--workers",
            "4",
            "e1",
            "e13",
        ]))
        .expect("valid");
        assert!(cli.quick);
        assert!(!cli.list);
        assert_eq!(cli.json.as_deref(), Some("r.json"));
        assert_eq!(cli.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(cli.metrics.as_deref(), Some("m.jsonl"));
        assert_eq!(cli.workers, 4);
        assert_eq!(cli.ids, vec!["e1", "e13"]);
    }

    #[test]
    fn all_keyword_and_defaults() {
        let cli = parse_args(&args(&["all"])).expect("valid");
        assert!(cli.ids.is_empty());
        assert_eq!(cli.workers, 1);
        assert_eq!(cli.shards, 1);
        assert!(cli.json.is_none());
    }

    #[test]
    fn parses_shards_and_rejects_bad_counts() {
        let cli = parse_args(&args(&["--shards", "4", "e18"])).expect("valid");
        assert_eq!(cli.shards, 4);
        let err = parse_args(&args(&["--shards", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_args(&args(&["--shards", "many"])).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = parse_args(&args(&["--shards"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = parse_args(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn parses_profile_flags() {
        let cli = parse_args(&args(&["--profile", "p.json"])).expect("valid");
        assert_eq!(cli.profile.as_deref(), Some("p.json"));
        assert!(cli.profile_folded.is_none());
        assert!(cli.profiled());
        let cli = parse_args(&args(&["--profile-folded", "p.folded"])).expect("valid");
        assert_eq!(cli.profile_folded.as_deref(), Some("p.folded"));
        assert!(cli.profiled());
        assert!(!parse_args(&args(&["e1"])).expect("valid").profiled());
    }

    #[test]
    fn rejects_missing_flag_values() {
        for flags in [
            &["--json"][..],
            &["--trace"],
            &["--metrics"],
            &["--profile"],
            &["--profile-folded"],
            &["--workers"],
        ] {
            let err = parse_args(&args(flags)).unwrap_err();
            assert!(err.contains("requires a value"), "{err}");
        }
        // A following flag is not a value.
        let err = parse_args(&args(&["--json", "--quick"])).unwrap_err();
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_workers() {
        let err = parse_args(&args(&["--workers", "many"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn validate_paths_rejects_missing_parent_dirs() {
        for flag in ["--json", "--trace", "--metrics"] {
            let mut cli = CliArgs::default();
            let path = Some("/definitely/not/a/dir/out.jsonl".to_string());
            match flag {
                "--json" => cli.json = path,
                "--trace" => cli.trace = path,
                _ => cli.metrics = path,
            }
            let err = validate_paths(&cli).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("does not exist"), "{err}");
        }
    }

    #[test]
    fn validate_paths_accepts_bare_and_existing_paths() {
        let cli = CliArgs {
            json: Some("report.json".into()), // bare filename → cwd
            trace: Some("/tmp/t.jsonl".into()),
            metrics: None,
            ..CliArgs::default()
        };
        assert!(validate_paths(&cli).is_ok());
    }

    #[test]
    fn attribution_table_renders_phases_and_bound() {
        let mut a = monitor::AttributionAgg::default();
        assert!(
            attribution_table("e9", &a).is_empty(),
            "nothing attributed → no table"
        );
        a.sdus = 2;
        a.clean = 1;
        a.errored = 1;
        a.latency_total_ns = 40_000_000;
        a.phases[0].add(30_000_000);
        a.phases[6].add(10_000_000);
        a.res_cycles = 1;
        a.res_max_ns = 15_000_000;
        a.res_bound_ns = 44_500_000;
        let t = attribution_table("e9", &a);
        assert!(t.contains("latency budget [e9]"), "{t}");
        assert!(t.contains("first_flight"), "{t}");
        assert!(t.contains("retx_flight"), "{t}");
        assert!(!t.contains("nak_wait"), "empty phases are omitted: {t}");
        assert!(t.contains("<= analytic bound 44.500 ms"), "{t}");
    }

    #[test]
    fn report_attribution_block_rides_next_to_metrics() {
        let runs = run_experiments(&args(&["e1"]), true);
        let doc = report_json(&runs, true);
        let exps = doc.get("experiments").and_then(Json::as_arr).expect("arr");
        let attr = exps[0].get("attribution").expect("attribution key");
        assert!(attr.get("phases").is_some(), "{attr:?}");
        assert!(attr.get("resolution").is_some(), "{attr:?}");
    }

    #[test]
    fn profiled_run_records_spans_and_coverage() {
        let runs = run_experiments_with(&args(&["e1"]), true, true);
        let p = runs[0].profile.as_ref().expect("profiled");
        assert!(!p.tree.is_empty(), "spans recorded");
        assert_eq!(p.dropped, 0, "workspace paths fit the default cap");
        let roots: Vec<&str> = p
            .tree
            .roots()
            .iter()
            .map(|&r| p.tree.node(r).name)
            .collect();
        assert!(roots.contains(&"experiment"), "{roots:?}");
        assert!(
            p.coverage() >= 0.9,
            "root spans cover ≥90% of the wall clock, got {:.3}",
            p.coverage()
        );
        // The report block rides next to perf; unprofiled runs get null.
        let doc = report_json(&runs, true);
        let exp = &doc.get("experiments").and_then(Json::as_arr).expect("arr")[0];
        assert!(exp.get("profile").and_then(|p| p.get("spans")).is_some());
        let plain = run_experiments(&args(&["e1"]), true);
        assert!(plain[0].profile.is_none());
        let doc = report_json(&plain, true);
        let exp = &doc.get("experiments").and_then(Json::as_arr).expect("arr")[0];
        assert_eq!(exp.get("profile"), Some(&Json::Null));
    }

    #[test]
    fn parses_timeline_flag() {
        let cli = parse_args(&args(&["--timeline", "t.json", "e18"])).expect("valid");
        assert_eq!(cli.timeline.as_deref(), Some("t.json"));
        assert_eq!(cli.ids, vec!["e18"]);
        let err = parse_args(&args(&["--timeline"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let cli = CliArgs {
            timeline: Some("/definitely/not/a/dir/t.json".into()),
            ..CliArgs::default()
        };
        let err = validate_paths(&cli).unwrap_err();
        assert!(err.contains("--timeline"), "{err}");
    }

    #[test]
    fn sharded_experiment_carries_shard_profile_and_timeline() {
        let runs = run_experiments(&args(&["e18"]), true);
        let acc = runs[0].shard.as_ref().expect("e18 runs sharded sims");
        assert!(acc.profile.events > 0);
        assert_eq!(acc.runs.len(), 2, "quick e18 sweeps two chain lengths");

        let doc = report_json(&runs, true);
        let exp = &doc.get("experiments").and_then(Json::as_arr).expect("arr")[0];
        let sp = exp.get("shard_profile").expect("shard_profile key");
        assert!(sp.get("events").and_then(Json::as_u64).expect("events") > 0);
        assert!(sp.get("efficiency").is_some(), "{sp:?}");
        assert!(sp.get("critical_cuts").is_some(), "{sp:?}");

        let table = shard_table("e18", &acc.profile);
        assert!(table.contains("parallel efficiency"), "{table}");
        assert!(table.contains("superstep(s)"), "{table}");

        let tl = timeline_json(&runs);
        assert_eq!(
            tl.get("schema").and_then(Json::as_str),
            Some(telemetry::TIMELINE_SCHEMA)
        );
        let events = tl.get("traceEvents").and_then(Json::as_arr).expect("arr");
        assert!(!events.is_empty());

        // Non-sharded experiments contribute neither block.
        let plain = run_experiments(&args(&["e1"]), true);
        assert!(plain[0].shard.is_none());
        let doc = report_json(&plain, true);
        let exp = &doc.get("experiments").and_then(Json::as_arr).expect("arr")[0];
        assert_eq!(exp.get("shard_profile"), Some(&Json::Null));
    }

    #[test]
    fn index_covers_every_experiment() {
        let ids: Vec<&str> = INDEX.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, experiments::ALL);
    }

    #[test]
    fn unknown_id_reported_without_output() {
        let runs = run_experiments(&args(&["e999"]), true);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].output.is_none());
        // An unknown id contributes nothing to the JSON document.
        let doc = report_json(&runs, true);
        let experiments = doc.get("experiments").expect("array");
        assert_eq!(format!("{experiments:?}").matches("\"id\"").count(), 0);
    }
}
