//! Events surfaced by the protocol endpoints to the layer above.

use crate::frame::PacketId;
use proto_core::Instant;

/// Events emitted by the [`crate::sender::Sender`].
#[derive(Clone, Debug, PartialEq)]
pub enum SenderEvent {
    /// An I-frame was positively covered by a checkpoint and its buffer
    /// space released. `held_for_ns` is the sender-side holding time (the
    /// paper's `H_frame` observable).
    Released {
        /// The released datagram.
        packet_id: PacketId,
        /// The sequence number it was released under.
        seq: u64,
        /// Sender-buffer holding time, nanoseconds.
        held_for_ns: u64,
    },
    /// A NAK arrived for `old_seq`; the frame was renumbered to `new_seq`
    /// and queued for retransmission.
    Renumbered {
        /// The datagram being retransmitted.
        packet_id: PacketId,
        /// The superseded sequence number.
        old_seq: u64,
        /// The fresh sequence number (§3.2 renumbering).
        new_seq: u64,
    },
    /// The checkpoint timer expired: entering enforced recovery, a
    /// Request-NAK is queued (§3.2).
    EnforcedRecoveryStarted {
        /// Probe id carried by the Request-NAK.
        probe: u64,
        /// When the recovery started.
        at: Instant,
    },
    /// An Enforced-NAK answered the probe; normal operation resumed.
    EnforcedRecoveryResolved {
        /// The answered probe id.
        probe: u64,
    },
    /// The failure timer expired: the link is declared failed and the
    /// network layer must be informed (§3.2). The sender stops
    /// transmitting I-frames.
    LinkFailed {
        /// When failure was declared.
        at: Instant,
    },
    /// A frame passed its resolving deadline without any checkpoint
    /// accounting for it and was preemptively renumbered/retransmitted.
    /// Rare by construction; non-zero counts indicate tail losses (e.g. a
    /// corrupted final frame followed by traffic silence).
    ResolvingExpired {
        /// The datagram being retransmitted.
        packet_id: PacketId,
        /// The expired sequence number.
        old_seq: u64,
        /// The fresh sequence number.
        new_seq: u64,
    },
    /// Flow control changed the sending-rate fraction.
    RateChanged {
        /// New rate fraction in `[min_rate, 1]`.
        rate: f64,
    },
}

/// Events emitted by the [`crate::receiver::Receiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// A clean I-frame was delivered upward (out-of-order delivery is
    /// normal: §2.3 relaxes the in-sequence constraint, the destination
    /// resequences).
    Delivered {
        /// The delivered datagram.
        packet_id: PacketId,
        /// The sequence number it arrived under.
        seq: u64,
    },
    /// An erroneous I-frame (or a gap implying a lost frame) was recorded
    /// for NAKing at the next checkpoint.
    ErrorRecorded {
        /// The erroneous/missing sequence number.
        seq: u64,
        /// True if a corrupted frame physically arrived; false for a
        /// gap-inferred loss.
        arrived: bool,
    },
    /// A Request-NAK was answered with an Enforced-NAK.
    EnforcedNakSent {
        /// The probe id echoed back.
        probe: u64,
    },
    /// The receive buffer crossed its occupancy watermark; subsequent
    /// checkpoints carry Stop until it drains (§3.4).
    CongestionOnset,
    /// The receive buffer drained below the watermark; checkpoints carry
    /// Go again.
    CongestionCleared,
    /// An arriving clean I-frame found the receive buffer full and was
    /// discarded (it will be NAK'd and retransmitted; §3.4 allows the
    /// receiver to discard overflow while signalling Stop).
    OverflowDiscarded {
        /// The discarded frame's sequence number.
        seq: u64,
    },
    /// The zero-duplication extension suppressed a repeated datagram
    /// (§3.2 "more recent version"; only with
    /// [`crate::receiver::Receiver::with_dedup`]).
    DuplicateSuppressed {
        /// The repeated datagram.
        packet_id: PacketId,
        /// The sequence number it arrived under.
        seq: u64,
    },
}
