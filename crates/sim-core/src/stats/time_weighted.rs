//! Time-weighted average of a step function.

use crate::time::Instant;

/// Tracks a piecewise-constant quantity (queue length, buffer occupancy,
/// sending rate) and computes its time-weighted mean and peak.
///
/// Call [`TimeWeighted::set`] whenever the value changes; the previous value
/// is weighted by the time it was held.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: Instant,
    last_t: Instant,
    last_v: f64,
    weighted_sum: f64,
    peak: f64,
    started: bool,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: Instant, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            weighted_sum: 0.0,
            peak: v0,
            started: true,
        }
    }

    /// Record that the value changed to `v` at time `t`.
    ///
    /// `t` must not precede the previous update.
    pub fn set(&mut self, t: Instant, v: f64) {
        debug_assert!(t >= self.last_t, "TimeWeighted::set: time went backwards");
        let dt = t.duration_since(self.last_t).as_secs_f64();
        self.weighted_sum += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Adjust the current value by `delta` at time `t` (convenience for
    /// enqueue/dequeue counting).
    pub fn add(&mut self, t: Instant, delta: f64) {
        let v = self.last_v + delta;
        self.set(t, v);
    }

    /// Current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Largest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[t0, t]`. Returns the current value if no
    /// time has elapsed.
    pub fn mean_at(&self, t: Instant) -> f64 {
        debug_assert!(t >= self.last_t);
        let total = t.duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        let tail = t.duration_since(self.last_t).as_secs_f64();
        (self.weighted_sum + self.last_v * tail) / total
    }

    /// Whether the tracker has been initialised.
    pub fn is_started(&self) -> bool {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn constant_value() {
        let t0 = Instant::ZERO;
        let tw = TimeWeighted::new(t0, 3.0);
        assert_eq!(tw.mean_at(t0 + Duration::from_secs(10)), 3.0);
        assert_eq!(tw.peak(), 3.0);
    }

    #[test]
    fn step_function_mean() {
        let t0 = Instant::ZERO;
        let mut tw = TimeWeighted::new(t0, 0.0);
        tw.set(Instant::from_secs(1), 10.0); // 0 for 1s
        tw.set(Instant::from_secs(3), 0.0); // 10 for 2s
                                            // mean over [0,4] = (0*1 + 10*2 + 0*1)/4 = 5
        assert!((tw.mean_at(Instant::from_secs(4)) - 5.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 10.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn add_delta() {
        let mut tw = TimeWeighted::new(Instant::ZERO, 0.0);
        tw.add(Instant::from_secs(1), 2.0);
        tw.add(Instant::from_secs(2), 3.0);
        tw.add(Instant::from_secs(3), -5.0);
        assert_eq!(tw.current(), 0.0);
        assert_eq!(tw.peak(), 5.0);
        // mean over [0,3]: 0*1 + 2*1 + 5*1 = 7/3
        assert!((tw.mean_at(Instant::from_secs(3)) - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_with_zero_elapsed() {
        let tw = TimeWeighted::new(Instant::from_secs(5), 9.0);
        assert_eq!(tw.mean_at(Instant::from_secs(5)), 9.0);
    }
}
