#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # lams-dlc-io
//!
//! A real-socket host for the sans-IO LAMS-DLC state machines: proof
//! that `lams_dlc::{Sender, Receiver}` run unchanged outside the
//! discrete-event simulator. The [`run_loopback`] transfer drives one
//! sender/receiver pair over a pair of connected loopback UDP sockets,
//! using the byte-level [`lams_dlc::wire`] codec for framing and a
//! [`proto_core::Clock`] for time — the wall clock in production, a
//! [`proto_core::ManualClock`] in deterministic tests.
//!
//! The host is deliberately dumb: it moves datagrams, fires the
//! machines' timers when their `poll_timeout` deadlines pass, and
//! injects deterministic adversity (every `drop_every`-th information
//! frame discarded before the socket send, every `corrupt_every`-th
//! arriving information frame handed over as payload-corrupted) so the
//! ARQ recovery paths are exercised on real I/O, not just under
//! simulation.
//!
//! ## Observability
//!
//! The host feeds the *same* telemetry pipeline the simulator uses:
//! both machines trace into a [`telemetry::FanoutSink`] carrying a live
//! [`monitor::Monitor`] (the five-invariant auditor plus windowed
//! metric series) and, optionally, a JSONL trace file that
//! `trace-tools audit` replays offline to the byte-identical verdict.
//! The stream opens with a `trace_header` declaring its
//! [`proto_core::ClockDomain`], so consumers know whether cadences are
//! exact (sim) or jitter-bearing (wall). On a configurable cadence the
//! host renders a machine-readable `lams-dlc.live/1` stats document
//! (counters, audit verdict, windowed series, delivery-latency
//! quantiles) to a file or stdout, and always appends one final
//! document after the run's end-of-run audit.
//!
//! The machines hold `Rc`-based trace handles and are therefore not
//! `Send`; both endpoints run on one thread, which a single-link UDP
//! demo never notices.

use bytes::Bytes;
use lams_dlc::{
    wire, Frame, LamsConfig, PacketId, Receiver, Resequencer, RxStatus, Sender, SenderState,
};
use monitor::{LiveSnapshot, Monitor, MonitorConfig};
use proto_core::Machine as _;
use proto_core::{Clock, Duration, WallClock};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{BufWriter, ErrorKind, Write};
use std::net::UdpSocket;
use std::path::PathBuf;
use std::rc::Rc;
use telemetry::{sink_trace, FanoutSink, Json, JsonlSink, Registry, SharedSink, TraceEvent};

/// Schema id of the live stats documents this host emits.
pub const LIVE_SCHEMA: &str = "lams-dlc.live/1";

/// Parameters of one loopback transfer.
#[derive(Clone, Debug)]
pub struct IoConfig {
    /// Number of SDUs to transfer (packet ids `0..sdus`).
    pub sdus: u64,
    /// Payload length of each SDU in bytes.
    pub payload_len: usize,
    /// Drop every `drop_every`-th information frame before it reaches
    /// the socket (counting both first transmissions and
    /// retransmissions). `0` disables loss injection.
    pub drop_every: u64,
    /// Treat every `corrupt_every`-th *arriving* information frame as
    /// payload-corrupted (CRC failure), exercising the NAK path without
    /// touching bytes on the wire. `0` disables corruption injection.
    pub corrupt_every: u64,
    /// Wall-clock budget for the whole transfer; exceeding it is an
    /// error (the machines should finish a loopback run in well under a
    /// second).
    pub timeout: std::time::Duration,
    /// Where to write periodic `lams-dlc.live/1` stats documents:
    /// `Some("-")` for stdout, `Some(path)` for a JSONL file, `None`
    /// for no stats. A final document (`"final":true`) is always
    /// appended after the end-of-run audit.
    pub stats: Option<String>,
    /// Cadence of the periodic stats documents.
    pub stats_interval: std::time::Duration,
    /// Write the full telemetry trace (JSONL [`telemetry::TraceRecord`]
    /// lines) here for offline `trace-tools` replay.
    pub trace: Option<PathBuf>,
    /// Receiver resequencing capacity override as
    /// `(capacity, stop_watermark)` — `None` for unbounded. Small
    /// capacities force Stop-Go flow control on a loopback link.
    pub rx_capacity: Option<(usize, usize)>,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            sdus: 200,
            payload_len: 64,
            drop_every: 7,
            corrupt_every: 0,
            timeout: std::time::Duration::from_secs(30),
            stats: None,
            stats_interval: std::time::Duration::from_millis(250),
            trace: None,
            rx_capacity: None,
        }
    }
}

/// Outcome of a completed loopback transfer.
#[derive(Clone, Debug)]
pub struct IoSummary {
    /// SDUs delivered in order at the receiving application (always
    /// equals [`IoConfig::sdus`] on success).
    pub delivered: u64,
    /// Information frames discarded by the loss injector.
    pub drops_injected: u64,
    /// Arriving information frames marked corrupted by the injector.
    pub corruptions_injected: u64,
    /// Datagrams actually written to the data-direction socket.
    pub datagrams_sent: u64,
    /// Feedback datagrams written by the receiver side.
    pub feedback_sent: u64,
    /// Sender retransmissions (should be ≥ `drops_injected` when loss
    /// injection is on — every dropped frame needs at least one).
    pub retransmissions: u64,
    /// Audit findings from the live monitor (0 on a healthy run).
    pub audit_findings: u64,
    /// Trace records the live monitor observed.
    pub audit_records: u64,
    /// Host counters (`io.inject.drops`, `io.tx.datagrams`, ...).
    pub counters: Registry,
    /// Wall-clock duration of the transfer (virtual under a manual
    /// clock).
    pub wall: std::time::Duration,
}

/// A [`LamsConfig`] suited to a loopback link: the paper's checkpoint
/// cadence and cumulation depth, with the expected round-trip shrunk
/// from the 4,000 km orbital value to a couple of milliseconds so the
/// recovery deadlines match the actual medium.
pub fn loopback_config() -> LamsConfig {
    let cfg = LamsConfig {
        expected_rtt: proto_core::Duration::from_millis(2),
        deadline_slack: proto_core::Duration::from_millis(2),
        ..LamsConfig::paper_default()
    };
    cfg.validate().expect("loopback config must validate");
    cfg
}

fn io_err(what: &str, e: std::io::Error) -> String {
    format!("{what}: {e}")
}

/// The datagram medium a transfer runs over: a data direction
/// (sender → receiver) and a feedback direction (receiver → sender).
/// Receives are non-blocking (`Ok(None)` when nothing is pending).
pub trait Transport {
    /// Send one data-direction datagram.
    fn send_data(&mut self, datagram: &[u8]) -> Result<(), String>;
    /// Receive one data-direction datagram, if pending.
    fn recv_data(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String>;
    /// Send one feedback-direction datagram.
    fn send_feedback(&mut self, datagram: &[u8]) -> Result<(), String>;
    /// Receive one feedback-direction datagram, if pending.
    fn recv_feedback(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String>;
}

/// Two connected non-blocking UDP sockets on ephemeral loopback ports:
/// `a` is the sender's network interface, `b` the receiver's.
pub struct UdpTransport {
    a: UdpSocket,
    b: UdpSocket,
}

impl UdpTransport {
    /// Bind and cross-connect the loopback socket pair.
    pub fn new() -> Result<Self, String> {
        let a = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| io_err("bind a", e))?;
        let b = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| io_err("bind b", e))?;
        a.connect(b.local_addr().map_err(|e| io_err("addr b", e))?)
            .map_err(|e| io_err("connect a", e))?;
        b.connect(a.local_addr().map_err(|e| io_err("addr a", e))?)
            .map_err(|e| io_err("connect b", e))?;
        a.set_nonblocking(true)
            .map_err(|e| io_err("nonblock a", e))?;
        b.set_nonblocking(true)
            .map_err(|e| io_err("nonblock b", e))?;
        Ok(UdpTransport { a, b })
    }
}

fn udp_recv(socket: &UdpSocket, buf: &mut [u8], what: &str) -> Result<Option<usize>, String> {
    match socket.recv(buf) {
        Ok(n) => Ok(Some(n)),
        Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(io_err(what, e)),
    }
}

impl Transport for UdpTransport {
    fn send_data(&mut self, datagram: &[u8]) -> Result<(), String> {
        self.a
            .send(datagram)
            .map(|_| ())
            .map_err(|e| io_err("send data", e))
    }

    fn recv_data(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String> {
        udp_recv(&self.b, buf, "recv data")
    }

    fn send_feedback(&mut self, datagram: &[u8]) -> Result<(), String> {
        self.b
            .send(datagram)
            .map(|_| ())
            .map_err(|e| io_err("send feedback", e))
    }

    fn recv_feedback(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String> {
        udp_recv(&self.a, buf, "recv feedback")
    }
}

/// In-memory lossless transport: two FIFO datagram queues. Paired with
/// a [`proto_core::ManualClock`] it makes the whole host loop
/// deterministic — tests replay transfers to byte-identical traces
/// with no sockets and no real waiting.
#[derive(Debug, Default)]
pub struct MemTransport {
    fwd: VecDeque<Vec<u8>>,
    rev: VecDeque<Vec<u8>>,
}

impl MemTransport {
    /// An empty in-memory transport.
    pub fn new() -> Self {
        Self::default()
    }
}

fn mem_recv(queue: &mut VecDeque<Vec<u8>>, buf: &mut [u8]) -> Result<Option<usize>, String> {
    match queue.pop_front() {
        Some(d) if d.len() <= buf.len() => {
            buf[..d.len()].copy_from_slice(&d);
            Ok(Some(d.len()))
        }
        Some(d) => Err(format!("datagram of {} bytes exceeds buffer", d.len())),
        None => Ok(None),
    }
}

impl Transport for MemTransport {
    fn send_data(&mut self, datagram: &[u8]) -> Result<(), String> {
        self.fwd.push_back(datagram.to_vec());
        Ok(())
    }

    fn recv_data(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String> {
        mem_recv(&mut self.fwd, buf)
    }

    fn send_feedback(&mut self, datagram: &[u8]) -> Result<(), String> {
        self.rev.push_back(datagram.to_vec());
        Ok(())
    }

    fn recv_feedback(&mut self, buf: &mut [u8]) -> Result<Option<usize>, String> {
        mem_recv(&mut self.rev, buf)
    }
}

/// Where the periodic stats documents go.
enum StatsOut {
    Stdout,
    File(BufWriter<std::fs::File>),
}

impl StatsOut {
    fn open(target: &str) -> Result<StatsOut, String> {
        if target == "-" {
            Ok(StatsOut::Stdout)
        } else {
            let f = std::fs::File::create(target)
                .map_err(|e| io_err(&format!("create {target}"), e))?;
            Ok(StatsOut::File(BufWriter::new(f)))
        }
    }

    /// Write one document line and flush, so `tail -f` and pipes see
    /// each snapshot as it happens.
    fn write_doc(&mut self, doc: &Json) -> Result<(), String> {
        let line = doc.render();
        match self {
            StatsOut::Stdout => {
                let mut out = std::io::stdout().lock();
                writeln!(out, "{line}").and_then(|()| out.flush())
            }
            StatsOut::File(w) => writeln!(w, "{line}").and_then(|()| w.flush()),
        }
        .map_err(|e| io_err("write stats", e))
    }
}

/// The numbers a stats document carries, sourced either from a mid-run
/// [`LiveSnapshot`] or from the folded end-of-run report.
struct StatsNums {
    findings: u64,
    records: u64,
    frames: u64,
    delivered: u64,
    naks: u64,
    retransmissions: u64,
    max_outstanding: u64,
    lat_count: u64,
    p50_s: Option<f64>,
    p99_s: Option<f64>,
    series: Vec<Json>,
}

impl StatsNums {
    fn from_snapshot(snap: LiveSnapshot) -> StatsNums {
        StatsNums {
            findings: snap.findings,
            records: snap.records,
            frames: snap.frames,
            delivered: snap.delivered,
            naks: snap.naks,
            retransmissions: snap.retransmissions,
            max_outstanding: snap.max_outstanding,
            lat_count: snap.delivery_count(),
            p50_s: snap.delivery_quantile(0.5),
            p99_s: snap.delivery_quantile(0.99),
            series: snap.series,
        }
    }

    fn from_report(report: &monitor::MonitorReport) -> StatsNums {
        let mut n = StatsNums {
            findings: report.total_findings,
            records: report.records,
            frames: 0,
            delivered: 0,
            naks: 0,
            retransmissions: 0,
            max_outstanding: 0,
            lat_count: 0,
            p50_s: None,
            p99_s: None,
            series: report.window_lines.clone(),
        };
        for exp in &report.experiments {
            n.frames += exp.frames;
            n.delivered += exp.delivered;
            n.naks += exp.naks;
            n.retransmissions += exp.retransmissions;
            n.max_outstanding = n.max_outstanding.max(exp.max_outstanding);
            n.lat_count += exp.delivery_count();
            // One experiment per host run; last one wins is exact here.
            n.p50_s = exp.delivery_quantile(0.5).or(n.p50_s);
            n.p99_s = exp.delivery_quantile(0.99).or(n.p99_s);
        }
        n
    }
}

/// Internal host state shared by the injection and stats paths.
struct HostCounters {
    registry: Registry,
    drops: u64,
    corruptions: u64,
    datagrams: u64,
    feedback: u64,
}

impl HostCounters {
    fn new() -> Self {
        let mut registry = Registry::new();
        // Register up front so a clean run still reports zeros.
        for name in [
            "io.inject.drops",
            "io.inject.corruptions",
            "io.tx.datagrams",
            "io.rx.feedback",
        ] {
            registry.handle(name);
        }
        HostCounters {
            registry,
            drops: 0,
            corruptions: 0,
            datagrams: 0,
            feedback: 0,
        }
    }

    fn counters_json(&self) -> Json {
        Json::obj([
            ("io.inject.drops", self.drops.into()),
            ("io.inject.corruptions", self.corruptions.into()),
            ("io.tx.datagrams", self.datagrams.into()),
            ("io.rx.feedback", self.feedback.into()),
        ])
    }
}

/// Render one `lams-dlc.live/1` document.
fn stats_doc(
    domain: &'static str,
    is_final: bool,
    elapsed_s: f64,
    sdus: u64,
    delivered_in_order: u64,
    counters: &HostCounters,
    nums: &StatsNums,
) -> Json {
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::obj([
        ("schema", LIVE_SCHEMA.into()),
        ("clock_domain", domain.into()),
        ("final", Json::Bool(is_final)),
        ("elapsed_s", Json::Num(elapsed_s)),
        ("counters", counters.counters_json()),
        (
            "progress",
            Json::obj([
                ("sdus", sdus.into()),
                ("delivered", delivered_in_order.into()),
            ]),
        ),
        (
            "audit",
            Json::obj([
                ("findings", nums.findings.into()),
                ("records", nums.records.into()),
            ]),
        ),
        (
            "link",
            Json::obj([
                ("frames", nums.frames.into()),
                ("delivered", nums.delivered.into()),
                ("naks", nums.naks.into()),
                ("retransmissions", nums.retransmissions.into()),
                ("max_outstanding", nums.max_outstanding.into()),
            ]),
        ),
        (
            "delivery_latency",
            Json::obj([
                ("count", nums.lat_count.into()),
                ("p50_s", opt(nums.p50_s)),
                ("p99_s", opt(nums.p99_s)),
            ]),
        ),
        ("series", Json::Arr(nums.series.clone())),
    ])
}

/// Run one sender→receiver transfer over real loopback UDP on the wall
/// clock. See [`run_transfer`] for the clock- and transport-generic
/// engine.
pub fn run_loopback(cfg: &IoConfig) -> Result<IoSummary, String> {
    let clock = WallClock::new();
    let mut link = UdpTransport::new()?;
    run_transfer(cfg, &clock, &mut link)
}

/// Run one sender→receiver transfer over `link`, timed by `clock`.
///
/// The whole observability pipeline — live audit, counters, stats
/// documents, optional JSONL trace — runs identically under a
/// [`WallClock`] with [`UdpTransport`] (production) and under a
/// [`proto_core::ManualClock`] with [`MemTransport`] (deterministic
/// tests).
///
/// Returns an error if the transfer does not complete within
/// [`IoConfig::timeout`], if delivery order is ever violated, or if
/// the sender declares link failure. Audit findings do *not* fail the
/// transfer; they are reported in [`IoSummary::audit_findings`].
pub fn run_transfer(
    cfg: &IoConfig,
    clock: &dyn Clock,
    link: &mut dyn Transport,
) -> Result<IoSummary, String> {
    // Telemetry pipeline: both machines and the host trace into a
    // fan-out carrying the live monitor and, optionally, a JSONL file.
    let mon = Rc::new(RefCell::new(Monitor::new(MonitorConfig::default())));
    let jsonl = match &cfg.trace {
        Some(path) => Some(Rc::new(RefCell::new(
            JsonlSink::create(path).map_err(|e| io_err("create trace", e))?,
        ))),
        None => None,
    };
    let mut sinks: Vec<SharedSink> = vec![mon.clone()];
    if let Some(j) = &jsonl {
        sinks.push(j.clone());
    }
    let fanout: SharedSink = Rc::new(RefCell::new(FanoutSink::new(sinks)));
    let host_trace = sink_trace(fanout.clone(), "host");
    let chan_trace = sink_trace(fanout.clone(), "channel");

    let mut stats = match &cfg.stats {
        Some(target) => Some(StatsOut::open(target)?),
        None => None,
    };
    let stats_interval = Duration::from_nanos(cfg.stats_interval.as_nanos().max(1) as u64);

    let lcfg = loopback_config();
    let modulus = lcfg.seq_modulus();
    let mut sender = Sender::new(lcfg.clone());
    let mut receiver = match cfg.rx_capacity {
        Some((capacity, watermark)) => Receiver::with_capacity(lcfg, capacity, watermark),
        None => Receiver::new(lcfg),
    };
    sender.set_trace(sink_trace(fanout.clone(), "tx"));
    receiver.set_trace(sink_trace(fanout.clone(), "rx"));

    let domain = clock.domain().as_str();
    let start = clock.now();
    host_trace.emit(start, || TraceEvent::TraceHeader {
        clock_domain: domain,
    });
    host_trace.emit(start, || TraceEvent::RunStarted);
    sender.start(start);
    receiver.start(start);

    let timeout = Duration::from_nanos(cfg.timeout.as_nanos() as u64);
    let mut next_stats = start + stats_interval;
    let mut counters = HostCounters::new();
    let mut next_id: u64 = 0; // next SDU to offer the sender
    let mut expected: u64 = 0; // next id the application must see
    let mut reseq = Resequencer::new(0);
    // The sender exposes no wire-sequence accessor (it doesn't need
    // one), so the host tracks the highest sequence it has put on the
    // wire as the expansion reference for inbound feedback.
    let mut tx_reference: u64 = 0;
    let mut info_seen: u64 = 0; // outbound info frames (drop injector)
    let mut rx_info_seen: u64 = 0; // inbound info frames (corruptor)
    let mut buf = [0u8; 2048];

    let outcome = 'outcome: loop {
        let t = clock.now();

        // Offer fresh SDUs until the sender's queue refuses more.
        while next_id < cfg.sdus {
            let payload = Bytes::from(vec![(next_id & 0xff) as u8; cfg.payload_len]);
            match sender.push(PacketId(next_id), payload) {
                Ok(()) => next_id += 1,
                Err(_) => break,
            }
        }

        // Fire due timers.
        if sender.poll_timeout().is_some_and(|d| d <= t) {
            sender.on_timeout(t);
        }
        if receiver.poll_timeout().is_some_and(|d| d <= t) {
            receiver.on_timeout(t);
        }

        // Data direction: sender → link, with loss injection.
        while let Some(frame) = sender.poll_transmit(clock.now()) {
            if let Frame::Info(ref info) = frame {
                tx_reference = tx_reference.max(info.seq);
                info_seen += 1;
                if cfg.drop_every != 0 && info_seen % cfg.drop_every == 0 {
                    counters.drops += 1;
                    counters.registry.inc("io.inject.drops");
                    chan_trace.emit(clock.now(), || TraceEvent::ChannelDrop { dir: "fwd" });
                    continue;
                }
            }
            let datagram = wire::encode(&frame, modulus);
            if let Err(e) = link.send_data(&datagram) {
                break 'outcome Err(e);
            }
            counters.datagrams += 1;
            counters.registry.inc("io.tx.datagrams");
        }

        // Feedback direction: receiver → link. Control frames ride the
        // same lossy medium in principle, but the demo keeps the
        // feedback channel clean (the simulator covers lossy feedback).
        while let Some(frame) = receiver.poll_transmit(clock.now()) {
            let datagram = wire::encode(&frame, modulus);
            if let Err(e) = link.send_feedback(&datagram) {
                break 'outcome Err(e);
            }
            counters.feedback += 1;
            counters.registry.inc("io.rx.feedback");
        }

        // Inbound data at the receiver, with corruption injection.
        loop {
            match link.recv_data(&mut buf) {
                // An undecodable datagram is indistinguishable from
                // silence on the wire — drop it and let the gap report.
                Ok(Some(n)) => {
                    if let Ok(frame) = wire::decode(&buf[..n], receiver.highest_seen(), modulus) {
                        let mut status = RxStatus::Ok;
                        if matches!(frame, Frame::Info(_)) {
                            rx_info_seen += 1;
                            if cfg.corrupt_every != 0 && rx_info_seen % cfg.corrupt_every == 0 {
                                status = RxStatus::PayloadCorrupted;
                                counters.corruptions += 1;
                                counters.registry.inc("io.inject.corruptions");
                            }
                        }
                        receiver.handle_frame(clock.now(), frame, status);
                    }
                }
                Ok(None) => break,
                Err(e) => break 'outcome Err(e),
            }
        }

        // Inbound feedback at the sender.
        loop {
            match link.recv_feedback(&mut buf) {
                Ok(Some(n)) => {
                    if let Ok(frame) = wire::decode(&buf[..n], tx_reference, modulus) {
                        sender.handle_frame(clock.now(), frame, RxStatus::Ok);
                    }
                }
                Ok(None) => break,
                Err(e) => break 'outcome Err(e),
            }
        }

        // Application delivery, resequenced and order-checked.
        let mut delivered_now = false;
        while let Some(d) = receiver.poll_deliver(clock.now()) {
            delivered_now = true;
            for (pid, _payload) in reseq.offer(d.packet_id, d.payload) {
                if pid.0 != expected {
                    break 'outcome Err(format!(
                        "out-of-order delivery: got {} want {expected}",
                        pid.0
                    ));
                }
                expected += 1;
            }
        }

        // Keep the event queues drained (the demo has no consumer for
        // holding-time events).
        while sender.poll_event().is_some() {}
        while receiver.poll_event().is_some() {}

        // Periodic live stats: snapshot the monitor mid-run. Missed
        // intervals (a host stall) collapse into one document.
        if stats.is_some() && t >= next_stats {
            let doc = {
                let nums = StatsNums::from_snapshot(mon.borrow().live_snapshot());
                stats_doc(
                    domain,
                    false,
                    (t - start).as_secs_f64(),
                    cfg.sdus,
                    expected,
                    &counters,
                    &nums,
                )
            };
            if let Some(out) = stats.as_mut() {
                out.write_doc(&doc)?;
            }
            while next_stats <= t {
                next_stats += stats_interval;
            }
        }

        if expected == cfg.sdus && sender.buffered() == 0 {
            break 'outcome Ok(());
        }
        if sender.state() == SenderState::Failed {
            break 'outcome Err(format!(
                "sender declared link failure after {} of {} SDUs",
                expected, cfg.sdus
            ));
        }
        if t - start > timeout {
            break 'outcome Err(format!(
                "timeout: delivered {} of {} SDUs in {:?}",
                expected, cfg.sdus, cfg.timeout
            ));
        }
        if !delivered_now {
            // Nothing happened this spin: yield briefly rather than
            // burning a core. 200 µs keeps timer error far below the
            // millisecond-scale protocol deadlines. (Manual clocks
            // advance virtual time here instead of parking.)
            clock.sleep(Duration::from_nanos(200_000));
        }
    };

    // End-of-run: close the trace so the auditor runs its final checks
    // (unresolved chains, silence), then render the closing stats
    // document from the folded report.
    let end = clock.now();
    host_trace.emit(end, || TraceEvent::RunFinished {
        deadline_hit: outcome.is_err(),
    });
    let report = mon.borrow_mut().take_report();
    if let Some(out) = stats.as_mut() {
        let nums = StatsNums::from_report(&report);
        let doc = stats_doc(
            domain,
            true,
            (end - start).as_secs_f64(),
            cfg.sdus,
            expected,
            &counters,
            &nums,
        );
        out.write_doc(&doc)?;
    }
    if let Some(j) = &jsonl {
        j.borrow_mut()
            .try_flush()
            .map_err(|e| io_err("flush trace", e))?;
    }
    outcome?;

    let stats_ = sender.stats();
    Ok(IoSummary {
        delivered: expected,
        drops_injected: counters.drops,
        corruptions_injected: counters.corruptions,
        datagrams_sent: counters.datagrams,
        feedback_sent: counters.feedback,
        retransmissions: stats_.retransmissions,
        audit_findings: report.total_findings,
        audit_records: report.records,
        counters: counters.registry,
        wall: std::time::Duration::from_nanos((end - start).as_nanos()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_config_validates_and_bounds_numbering() {
        let cfg = loopback_config();
        assert!(cfg.seq_modulus().is_power_of_two());
        assert!(cfg.seq_modulus() < 1 << 20);
    }

    #[test]
    fn lossless_transfer_completes() {
        let summary = run_loopback(&IoConfig {
            sdus: 50,
            payload_len: 32,
            drop_every: 0,
            timeout: std::time::Duration::from_secs(20),
            ..IoConfig::default()
        })
        .expect("lossless loopback transfer");
        assert_eq!(summary.delivered, 50);
        assert_eq!(summary.drops_injected, 0);
        assert_eq!(summary.audit_findings, 0, "clean run must audit clean");
        assert_eq!(summary.counters.get("io.inject.drops"), Some(0.0));
        assert!(summary.counters.get("io.tx.datagrams").unwrap_or(0.0) > 0.0);
    }
}
