//! Sender-side Stop-Go rate controller (§3.4).
//!
//! The receiver sets the Stop-Go bit of every checkpoint from its buffer
//! outlook; the sender reacts:
//!
//! * on **Stop** — decrease the sending rate by a predefined factor, and
//!   keep decreasing while Stop persists beyond the sustain period;
//! * on **Go** — restore rate stepwise.
//!
//! The controller scales the *inter-frame spacing* of new I-frames; per
//! §3.4 buffer control is a separate mechanism (checkpoint coverage) and
//! does not gate transmission the way HDLC's RR credit does.

use crate::config::FlowConfig;
use crate::frame::StopGo;
use proto_core::Instant;

/// AIMD-style rate controller driven by checkpoint Stop-Go bits.
#[derive(Clone, Debug)]
pub struct RateController {
    cfg: FlowConfig,
    rate: f64,
    /// Start of the current uninterrupted Stop episode, if any.
    stop_since: Option<Instant>,
    /// Time of the most recent decrease within this episode.
    last_decrease: Option<Instant>,
}

impl RateController {
    /// Full-rate controller.
    pub fn new(cfg: FlowConfig) -> Self {
        RateController {
            cfg,
            rate: 1.0,
            stop_since: None,
            last_decrease: None,
        }
    }

    /// Current sending-rate fraction in `[min_rate, 1]`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Feed the Stop-Go bit of a received checkpoint. Returns `true` if
    /// the rate changed.
    pub fn on_stop_go(&mut self, now: Instant, sg: StopGo) -> bool {
        let before = self.rate;
        match sg {
            StopGo::Stop => {
                match self.stop_since {
                    None => {
                        // First Stop: immediate decrease.
                        self.stop_since = Some(now);
                        self.last_decrease = Some(now);
                        self.rate = (self.rate * self.cfg.decrease_factor).max(self.cfg.min_rate);
                    }
                    Some(_) => {
                        // Sustained Stop: decrease again every `sustain`.
                        let due = self
                            .last_decrease
                            .is_none_or(|t| now.duration_since(t) >= self.cfg.sustain);
                        if due {
                            self.last_decrease = Some(now);
                            self.rate =
                                (self.rate * self.cfg.decrease_factor).max(self.cfg.min_rate);
                        }
                    }
                }
            }
            StopGo::Go => {
                self.stop_since = None;
                self.last_decrease = None;
                self.rate = (self.rate + self.cfg.increase_step).min(1.0);
            }
        }
        self.rate != before
    }

    /// Inter-frame spacing multiplier: `1 / rate`. A rate of 0.5 doubles
    /// the spacing between new I-frames.
    pub fn spacing_multiplier(&self) -> f64 {
        1.0 / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proto_core::Duration;

    fn ctl() -> RateController {
        RateController::new(FlowConfig::default())
    }

    #[test]
    fn starts_at_full_rate() {
        assert_eq!(ctl().rate(), 1.0);
        assert_eq!(ctl().spacing_multiplier(), 1.0);
    }

    #[test]
    fn first_stop_halves() {
        let mut c = ctl();
        assert!(c.on_stop_go(Instant::ZERO, StopGo::Stop));
        assert_eq!(c.rate(), 0.5);
    }

    #[test]
    fn sustained_stop_keeps_decreasing() {
        let mut c = ctl();
        let mut t = Instant::ZERO;
        c.on_stop_go(t, StopGo::Stop); // 0.5
                                       // Within the sustain period: no further decrease.
        t += Duration::from_millis(1);
        assert!(!c.on_stop_go(t, StopGo::Stop));
        assert_eq!(c.rate(), 0.5);
        // Past the sustain period: decrease again.
        t += Duration::from_millis(5);
        assert!(c.on_stop_go(t, StopGo::Stop));
        assert_eq!(c.rate(), 0.25);
    }

    #[test]
    fn rate_floor_respected() {
        let mut c = ctl();
        let mut t = Instant::ZERO;
        for _ in 0..50 {
            c.on_stop_go(t, StopGo::Stop);
            t += Duration::from_millis(10);
        }
        assert_eq!(c.rate(), FlowConfig::default().min_rate);
    }

    #[test]
    fn go_recovers_stepwise() {
        let mut c = ctl();
        let mut t = Instant::ZERO;
        c.on_stop_go(t, StopGo::Stop); // 0.5
        t += Duration::from_millis(10);
        assert!(c.on_stop_go(t, StopGo::Go));
        assert!((c.rate() - 0.6).abs() < 1e-12);
        // Repeated Go saturates at 1.0.
        for _ in 0..10 {
            t += Duration::from_millis(10);
            c.on_stop_go(t, StopGo::Go);
        }
        assert_eq!(c.rate(), 1.0);
        assert!(!c.on_stop_go(t, StopGo::Go), "no change at ceiling");
    }

    #[test]
    fn go_resets_stop_episode() {
        let mut c = ctl();
        let mut t = Instant::ZERO;
        c.on_stop_go(t, StopGo::Stop); // 0.5
        t += Duration::from_millis(10);
        c.on_stop_go(t, StopGo::Go); // 0.6
        t += Duration::from_millis(1);
        // A fresh Stop decreases immediately (new episode).
        assert!(c.on_stop_go(t, StopGo::Stop));
        assert!((c.rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn spacing_inverse_of_rate() {
        let mut c = ctl();
        c.on_stop_go(Instant::ZERO, StopGo::Stop);
        assert!((c.spacing_multiplier() - 2.0).abs() < 1e-12);
    }
}
