//! Burst storm: beam-mispointing bursts (Gilbert–Elliott) hammering the
//! link, comparing all three protocols. Demonstrates the §3.3 claim: the
//! cumulative NAK survives bursts shorter than `C_depth · W_cp` without
//! resynchronisation, while timeout-based recovery stalls.
//!
//! Run with: `cargo run --release --example burst_storm`

use harness::{run_gbn, run_lams, run_sr, BurstCfg, ScenarioConfig};
use sim_core::Duration;

fn main() {
    let n = 20_000u64;
    println!(
        "burst storm: {} x 1 kB over 4,000 km, bursts of increasing length\n",
        n
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "burst(ms)", "lams eff", "sr eff", "gbn eff", "lams req-naks", "lams lost"
    );
    for burst_ms in [2u64, 10, 30] {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.deadline = Duration::from_secs(600);
        cfg.burst = Some(BurstCfg {
            mean_good: Duration::from_millis(100),
            mean_bad: Duration::from_millis(burst_ms),
            ber_good: 1e-7,
            ber_bad: 1e-3,
            ctrl_ber_good: 1e-8,
            ctrl_ber_bad: 1e-3,
        });
        let lams = run_lams(&cfg);
        let sr = run_sr(&cfg);
        let gbn = run_gbn(&cfg);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>14} {:>12}",
            burst_ms,
            lams.efficiency(),
            sr.efficiency(),
            gbn.efficiency(),
            lams.extra("lams.sender.request_naks").unwrap_or(0.0) as u64,
            lams.lost,
        );
        assert_eq!(lams.lost, 0, "LAMS must not lose frames under bursts");
    }
    println!(
        "\nC_depth * W_cp = 15 ms: bursts under that bound leave the\n\
         cumulative NAK stream intact (few/no Request-NAKs); longer bursts\n\
         trigger enforced recovery but still lose nothing."
    );
}
