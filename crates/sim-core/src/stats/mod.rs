//! Measurement collection for simulation experiments.
//!
//! - [`Summary`] — streaming mean/variance/min/max (Welford).
//! - [`Histogram`] — fixed-width bins with under/overflow, for latency
//!   distributions.
//! - [`TimeWeighted`] — time-weighted average of a step function, for queue
//!   and buffer occupancy.
//! - [`Series`] — sampled `(t, value)` trace for plotting-style output.

mod histogram;
mod series;
mod summary;
mod time_weighted;

pub use histogram::Histogram;
pub use series::Series;
pub use summary::Summary;
pub use time_weighted::TimeWeighted;
