#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # orbit
//!
//! LEO constellation geometry for the LAMS network environment (paper
//! §2.1): circular-orbit propagation, inter-satellite ranges and line of
//! sight, visibility windows (the paper's "link lifetime"), and the timing
//! profile — `R`, `var(R_t)`, `α`, `t_out` — that the protocols and the
//! closed-form analysis consume.
//!
//! The model is deliberately two-body/circular: the paper's analysis
//! assumes deterministic link behaviour ("the subnet nodes know the precise
//! distances and variance of the link"), and circular two-body propagation
//! is exact under that assumption.

pub mod constants;
pub mod geometry;
pub mod link_profile;
pub mod orbit;
pub mod visibility;

pub use constants::{propagation_delay_s, C_KM_S, EARTH_RADIUS_KM, GRAZING_ALTITUDE_KM};
pub use geometry::{has_line_of_sight, Vec3};
pub use link_profile::LinkProfile;
pub use orbit::Satellite;
pub use visibility::{feasible, visibility_windows, LinkConstraints, Window};
