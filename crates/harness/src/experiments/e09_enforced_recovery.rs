//! E9 — enforced recovery and failure detection under injected outages
//! (§3.2): a recoverable outage costs one enforced-recovery exchange and
//! loses nothing; an unrecoverable one is declared failed within the
//! failure-timer bound; duplicates may appear (the paper accepts them;
//! the destination resequencer absorbs them); loss never does.

use crate::experiments::ExperimentOutput;
use crate::link::Outage;
use crate::parallel;
use crate::report::Table;
use crate::scenario::{run_lams, ScenarioConfig};
use sim_core::{Duration, Instant};

/// Outage durations injected, ms. With the default timers (checkpoint
/// timeout 16 ms, failure timeout ≈ 43 ms) outages up to ~50 ms are
/// recoverable; longer ones are — correctly, per the §3.2 rules — declared
/// link failures.
pub const OUTAGES_MS: &[u64] = &[10, 30, 45, 80, 100_000];

/// Run E9.
pub fn run(quick: bool) -> ExperimentOutput {
    let n: u64 = if quick { 2_000 } else { 10_000 };
    let mut table = Table::new(
        "outage injection: enforced recovery and failure declaration",
        &[
            "outage_ms",
            "delivered",
            "lost",
            "duplicates",
            "lams.sender.request_naks",
            "link_failed",
            "elapsed_ms",
        ],
    );
    let runs = parallel::map(OUTAGES_MS.to_vec(), |ms| {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_packets = n;
        cfg.data_residual_ber = 1e-7;
        cfg.ctrl_residual_ber = 1e-8;
        cfg.outages.push(Outage {
            from: Instant::from_millis(20),
            until: Instant::from_millis(20 + ms),
        });
        cfg.deadline = Duration::from_secs(120);
        run_lams(&cfg)
    });
    for (&ms, r) in OUTAGES_MS.iter().zip(runs) {
        table.row(vec![
            ms.into(),
            r.delivered_unique.into(),
            r.lost.into(),
            r.duplicates.into(),
            r.extra("lams.sender.request_naks").unwrap_or(0.0).into(),
            u64::from(r.link_failed).into(),
            (r.elapsed_s() * 1e3).into(),
        ]);
    }
    ExperimentOutput {
        id: "E9",
        title: "Enforced recovery & failure detection under outages (paper §3.2)".into(),
        tables: vec![table],
        traces: vec![],
        notes: vec![
            "expected shape: outages within the enforced-recovery window \
             (≈ 50 ms at these timers) recover via Request-NAK/Enforced-NAK \
             with zero loss; longer outages are declared link failures — \
             never silent loss: lost > 0 implies link_failed = 1, and the \
             unaccounted frames are bounded by the resolving period (the \
             inconsistency gap)"
                .into(),
            "inconsistency-gap bound: recovery adds at most the resolving \
             period R + W_cp/2 + C_depth·W_cp beyond the outage itself"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_no_silent_loss_and_correct_failure_detection() {
        let out = run(true);
        let t = &out.tables[0];
        for row in 0..t.len() {
            let lost = t.value(row, 2).unwrap();
            let failed = t.value(row, 5).unwrap();
            // The core §3.2 guarantee: frames are never SILENTLY lost — a
            // row may only show losses if the failure was reported to the
            // network layer.
            assert!(
                lost == 0.0 || failed == 1.0,
                "row {row}: silent loss (lost={lost}, failed={failed})"
            );
        }
        // Short outages (≤ 30 ms here) recover with zero loss.
        for row in 0..2 {
            assert_eq!(t.value(row, 2).unwrap(), 0.0, "row {row}: lost frames");
            assert_eq!(t.value(row, 5).unwrap(), 0.0, "row {row}: spurious failure");
        }
        // The permanent outage must be declared failed, quickly (within
        // checkpoint timeout + failure timeout of the outage start, far
        // under a second).
        let last = t.len() - 1;
        assert_eq!(
            t.value(last, 5).unwrap(),
            1.0,
            "permanent outage not detected"
        );
        assert!(t.value(last, 6).unwrap() < 500.0, "detection too slow");
    }
}
