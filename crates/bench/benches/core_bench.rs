//! Criterion view of the hot-path micro-kernels in [`bench`] — the
//! same workloads `bench_suite` times, under the statistics harness.
//! Run `cargo bench -p bench --bench core_bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ITERS: u64 = 10_000;

fn queue_mix(c: &mut Criterion) {
    c.bench_function("core/event_queue_mix", |b| {
        b.iter(|| black_box(bench::queue_mix(black_box(ITERS)).ops))
    });
}

fn queue_hot(c: &mut Criterion) {
    c.bench_function("core/event_queue_hot", |b| {
        b.iter(|| black_box(bench::queue_hot(black_box(ITERS)).ops))
    });
}

fn registry_name(c: &mut Criterion) {
    c.bench_function("core/registry_inc_name", |b| {
        b.iter(|| black_box(bench::registry_inc_by_name(black_box(ITERS)).ops))
    });
}

fn registry_handle(c: &mut Criterion) {
    c.bench_function("core/registry_inc_handle", |b| {
        b.iter(|| black_box(bench::registry_inc_by_handle(black_box(ITERS)).ops))
    });
}

fn trace_disabled(c: &mut Criterion) {
    c.bench_function("core/trace_emit_disabled", |b| {
        b.iter(|| black_box(bench::trace_emit_disabled(black_box(ITERS)).ops))
    });
}

fn trace_jsonl(c: &mut Criterion) {
    c.bench_function("core/trace_emit_jsonl", |b| {
        b.iter(|| black_box(bench::trace_emit_jsonl(black_box(ITERS)).ops))
    });
}

criterion_group!(
    benches,
    queue_mix,
    queue_hot,
    registry_name,
    registry_handle,
    trace_disabled,
    trace_jsonl
);
criterion_main!(benches);
