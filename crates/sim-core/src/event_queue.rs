//! The discrete-event scheduler.
//!
//! A classic calendar of `(Instant, payload)` pairs backed by a binary heap.
//! Ties are broken by insertion order (FIFO among simultaneous events) so
//! that runs are deterministic regardless of heap internals — a requirement
//! for reproducible experiments and for paper assumption 8 (deterministic
//! model).
//!
//! ## Hot-path layout
//!
//! Payloads live in a slab and the heap orders small fixed-size
//! `(at, seq, slot)` entries, so sift operations move 24 bytes no matter
//! how large the event type is. Liveness is a bit per issued sequence
//! number: [`EventQueue::cancel`] clears one bit (O(1), no heap scan, no
//! hashing) and [`EventQueue::pop`] skips dead entries with one bit test
//! per entry. [`EventQueue::reschedule`] moves a pending event to a new
//! instant without touching its payload — one operation where callers
//! previously paid a cancel plus a fresh schedule.

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle returned by [`EventQueue::schedule`]; can be used to cancel or
/// reschedule the event while it is still pending.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

/// A heap entry: when, tie-break, and where the payload lives. Kept
/// payload-free (and `Copy`) so heap sifts move 24 bytes regardless of
/// the event type's size.
#[derive(Clone, Copy)]
struct Entry {
    at: Instant,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and among
        // equals, the first inserted) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use sim_core::{EventQueue, Instant};
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_millis(2), "later");
/// q.schedule(Instant::from_millis(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (Instant::from_millis(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    /// Payload slab; heap entries index into it. `None` slots are free.
    slots: Vec<Option<E>>,
    free_slots: Vec<u32>,
    /// One liveness bit per issued sequence number: set while the event
    /// is pending, cleared on pop/cancel/reschedule.
    live: Vec<u64>,
    /// Heap entries whose liveness bit is clear (awaiting lazy removal).
    dead: usize,
    next_seq: u64,
    now: Instant,
    stats: QueueStats,
    /// Wall-clock span handle; disabled (one branch per operation)
    /// unless a driver opted in via [`EventQueue::set_profiler`].
    prof: profile::Prof,
}

/// Lifetime counters maintained by [`EventQueue`]; cheap enough to be
/// always-on (a handful of integer updates per operation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct QueueStats {
    scheduled: u64,
    popped: u64,
    cancelled: u64,
    peak_depth: usize,
    compactions: u64,
}

/// A profiling snapshot of an [`EventQueue`], taken with
/// [`EventQueue::profile`] — typically once, after a run drains the
/// queue — and reported in machine-readable run output.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueueProfile {
    /// Events ever scheduled (a reschedule counts as a fresh schedule).
    pub scheduled: u64,
    /// Events popped (fired).
    pub popped: u64,
    /// Events cancelled before firing (a reschedule counts as a cancel
    /// of the superseded instant).
    pub cancelled: u64,
    /// Maximum number of pending events at any point.
    pub peak_depth: usize,
    /// Times the heap was compacted because lazily-cancelled entries
    /// outnumbered live ones.
    pub compactions: u64,
    /// Simulated time reached (timestamp of the last pop).
    pub horizon: Instant,
}

impl QueueProfile {
    /// Simulated events processed per wall-clock second.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.popped as f64 / wall_secs
        } else {
            0.0
        }
    }

    /// Fold another profile into this one (summing counters, taking the
    /// max of peaks and horizons) — used when one run drives several
    /// queues.
    pub fn absorb(&mut self, other: &QueueProfile) {
        self.scheduled += other.scheduled;
        self.popped += other.popped;
        self.cancelled += other.cancelled;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.compactions += other.compactions;
        self.horizon = self.horizon.max(other.horizon);
    }
}

/// Wall-clock stopwatch for computing simulated-events/sec alongside a
/// [`QueueProfile`]. Separate from simulated time on purpose: nothing
/// inside the simulation may observe it.
#[derive(Clone, Debug)]
pub struct RunTimer {
    clock: proto_core::WallClock,
}

impl RunTimer {
    /// Start timing now.
    pub fn start() -> Self {
        RunTimer {
            clock: proto_core::WallClock::new(),
        }
    }

    /// Wall-clock seconds since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        use proto_core::Clock;
        self.clock.now().as_secs_f64()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: Vec::new(),
            dead: 0,
            next_seq: 0,
            now: Instant::ZERO,
            stats: QueueStats::default(),
            prof: profile::Prof::disabled(),
        }
    }

    /// Attach a self-profiling handle: every queue operation then runs
    /// under a wall-clock span (`queue.schedule`, `queue.pop`, ...)
    /// recorded beneath whatever span the caller currently has open.
    /// The handle survives [`EventQueue::reset`]; pass
    /// [`profile::Prof::disabled`] to detach.
    pub fn set_profiler(&mut self, prof: profile::Prof) {
        self.prof = prof;
    }

    /// Return the queue to its just-constructed state — clock at t = 0,
    /// no pending events, fresh counters — while keeping the heap's,
    /// slab's and bitmap's allocations. Lets a driver reuse one queue
    /// across many runs.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.live.clear();
        self.dead = 0;
        self.next_seq = 0;
        self.now = Instant::ZERO;
        self.stats = QueueStats::default();
    }

    /// Snapshot the queue's lifetime profiling counters.
    pub fn profile(&self) -> QueueProfile {
        QueueProfile {
            scheduled: self.stats.scheduled,
            popped: self.stats.popped,
            cancelled: self.stats.cancelled,
            peak_depth: self.stats.peak_depth,
            compactions: self.stats.compactions,
            horizon: self.now,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (t = 0 before the first pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.dead
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn is_live(&self, seq: u64) -> bool {
        let word = (seq >> 6) as usize;
        word < self.live.len() && self.live[word] & (1u64 << (seq & 63)) != 0
    }

    #[inline]
    fn set_live(&mut self, seq: u64) {
        let word = (seq >> 6) as usize;
        if word >= self.live.len() {
            self.live.resize(word + 1, 0);
        }
        self.live[word] |= 1u64 << (seq & 63);
    }

    #[inline]
    fn clear_live(&mut self, seq: u64) {
        let word = (seq >> 6) as usize;
        if word < self.live.len() {
            self.live[word] &= !(1u64 << (seq & 63));
        }
    }

    #[inline]
    fn alloc_slot(&mut self, payload: E) -> u32 {
        match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// Scheduling in the past is a logic error and panics: the simulated
    /// clock must never run backwards.
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventId {
        let _span = self.prof.span("queue.schedule");
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(payload);
        self.set_live(seq);
        self.heap.push(Entry { at, seq, slot });
        self.stats.scheduled += 1;
        let depth = self.heap.len() - self.dead;
        self.stats.peak_depth = self.stats.peak_depth.max(depth);
        EventId { seq, slot }
    }

    /// Cancel a previously scheduled event: clear its liveness bit and
    /// free its payload slot — O(1), no heap traversal. The heap entry
    /// is dropped lazily when it surfaces. Cancelling an already-fired
    /// or unknown id is a no-op. Returns whether the id was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let _span = self.prof.span("queue.cancel");
        if !self.is_live(id.seq) {
            return false;
        }
        self.clear_live(id.seq);
        self.slots[id.slot as usize] = None;
        self.free_slots.push(id.slot);
        self.dead += 1;
        self.stats.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Move a pending event to a new instant, keeping its payload — the
    /// one-operation form of cancel + schedule that timer refreshes
    /// want. The event is re-sequenced: among events at the new instant
    /// it fires after those already scheduled there. Returns the
    /// replacement id, or `None` when `id` already fired or was
    /// cancelled (the payload is gone; schedule afresh).
    ///
    /// Like [`EventQueue::schedule`], rescheduling into the past panics.
    pub fn reschedule(&mut self, id: EventId, at: Instant) -> Option<EventId> {
        let _span = self.prof.span("queue.reschedule");
        if !self.is_live(id.seq) {
            return None;
        }
        assert!(
            at >= self.now,
            "rescheduling into the past: at={at:?} now={:?}",
            self.now
        );
        // The superseded heap entry goes dead in place; the payload slot
        // transfers to the replacement id untouched.
        self.clear_live(id.seq);
        self.dead += 1;
        self.stats.cancelled += 1;
        self.maybe_compact();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set_live(seq);
        self.heap.push(Entry {
            at,
            seq,
            slot: id.slot,
        });
        self.stats.scheduled += 1;
        Some(EventId { seq, slot: id.slot })
    }

    /// Timestamp of the earliest *live* pending event without popping
    /// it — the horizon a conservative parallel shard advertises to its
    /// coordinator. Dead (cancelled/superseded) heap entries at the top
    /// are dropped on the way, so the answer is exact, not a stale
    /// lower bound.
    pub fn next_instant(&mut self) -> Option<Instant> {
        let _span = self.prof.span("queue.next_instant");
        self.drop_dead();
        self.heap.peek().map(|e| e.at)
    }

    /// Timestamp of the next pending event, if any. Alias of
    /// [`EventQueue::next_instant`], kept for existing callers.
    pub fn peek_time(&mut self) -> Option<Instant> {
        self.next_instant()
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let _span = self.prof.span("queue.pop");
        self.drop_dead();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.stats.popped += 1;
        self.clear_live(entry.seq);
        let payload = self.slots[entry.slot as usize]
            .take()
            .expect("live entry owns its slot");
        self.free_slots.push(entry.slot);
        Some((entry.at, payload))
    }

    /// Pop the next event only if it fires exactly at `at` — the fused
    /// peek-then-pop the event loop's same-instant drain wants, touching
    /// the heap top once.
    pub fn pop_at(&mut self, at: Instant) -> Option<E> {
        let _span = self.prof.span("queue.pop_at");
        self.drop_dead();
        if self.heap.peek().map(|e| e.at) != Some(at) {
            return None;
        }
        self.pop().map(|(_, e)| e)
    }

    fn drop_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.is_live(top.seq) {
                break;
            }
            self.heap.pop();
            self.dead -= 1;
        }
    }

    /// Rebuild the heap without its dead entries once they outnumber
    /// the live ones. Lazy cancellation alone only removes dead entries
    /// when they surface at the top, so a cancel-heavy run whose
    /// cancelled timers sit far in the future grows the heap without
    /// bound; compacting at the dead > live threshold keeps the heap at
    /// most 2× the live count while staying O(1) amortized per cancel
    /// (a compaction touching n entries is paid for by the > n/2
    /// cancels since the last one).
    fn maybe_compact(&mut self) {
        if self.dead <= self.heap.len() - self.dead {
            return;
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| self.is_live(e.seq));
        self.heap = BinaryHeap::from(entries);
        self.dead = 0;
        self.stats.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(30), 3);
        q.schedule(Instant::from_nanos(10), 1);
        q.schedule(Instant::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(5), ());
        q.schedule(Instant::from_nanos(5), ());
        q.schedule(Instant::from_nanos(9), ());
        let mut last = Instant::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Instant::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_nanos(10), ());
        q.pop();
        q.schedule(Instant::from_nanos(5), ());
    }

    #[test]
    fn cancel_pending_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_fired_event_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Instant::from_nanos(7)));
    }

    #[test]
    fn profile_counts_operations() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        q.schedule(Instant::from_nanos(3), "c");
        q.cancel(a);
        q.cancel(a); // double-cancel must not double-count
        while q.pop().is_some() {}
        let p = q.profile();
        assert_eq!(p.scheduled, 3);
        assert_eq!(p.cancelled, 1);
        assert_eq!(p.popped, 2);
        assert_eq!(p.peak_depth, 3);
        assert_eq!(p.horizon, Instant::from_nanos(3));
    }

    #[test]
    fn profile_absorb_merges() {
        let mut a = QueueProfile {
            scheduled: 5,
            popped: 4,
            cancelled: 1,
            peak_depth: 3,
            compactions: 2,
            horizon: Instant::from_millis(2),
        };
        let b = QueueProfile {
            scheduled: 2,
            popped: 2,
            cancelled: 0,
            peak_depth: 7,
            compactions: 1,
            horizon: Instant::from_millis(1),
        };
        a.absorb(&b);
        assert_eq!(a.scheduled, 7);
        assert_eq!(a.popped, 6);
        assert_eq!(a.peak_depth, 7);
        assert_eq!(a.compactions, 3);
        assert_eq!(a.horizon, Instant::from_millis(2));
        assert!(a.events_per_sec(2.0) == 3.0);
        assert!(a.events_per_sec(0.0) == 0.0);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_nanos(1), "a");
        q.schedule(Instant::from_nanos(2), "b");
        q.cancel(a);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.profile(), QueueProfile::default());
        // Post-reset behaviour matches a fresh queue, including seq-based
        // FIFO tie-breaking starting over from zero.
        q.schedule(Instant::from_nanos(1), "x");
        q.schedule(Instant::from_nanos(1), "y");
        assert_eq!(q.pop().unwrap().1, "x");
        assert_eq!(q.pop().unwrap().1, "y");
        let p = q.profile();
        assert_eq!((p.scheduled, p.popped), (2, 2));
    }

    #[test]
    fn reschedule_pattern() {
        // A periodic timer: pop, then reschedule relative to now.
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(1), ());
        let mut fired = 0;
        while fired < 5 {
            let (t, ()) = q.pop().unwrap();
            fired += 1;
            if fired < 5 {
                q.schedule(t + Duration::from_millis(1), ());
            }
        }
        assert_eq!(q.now(), Instant::from_millis(5));
    }

    #[test]
    fn reschedule_moves_event_keeping_payload() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_millis(5), "timer");
        q.schedule(Instant::from_millis(2), "other");
        // Refresh the timer earlier than the other event.
        let a2 = q.reschedule(a, Instant::from_millis(1)).expect("pending");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap(), (Instant::from_millis(1), "timer"));
        assert_eq!(q.pop().unwrap(), (Instant::from_millis(2), "other"));
        assert!(q.is_empty());
        // The superseded id is dead; so is the replacement after firing.
        assert!(!q.cancel(a));
        assert!(!q.cancel(a2));
        // Accounting: 2 schedules + 1 reschedule (counts as both), 2 pops.
        let p = q.profile();
        assert_eq!((p.scheduled, p.popped, p.cancelled), (3, 2, 1));
    }

    #[test]
    fn reschedule_later_and_ties() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_millis(1), "a");
        q.schedule(Instant::from_millis(2), "b");
        // Deferring re-sequences: at the tied instant, "a" now fires
        // after "b" (it re-entered the queue later).
        q.reschedule(a, Instant::from_millis(2)).expect("pending");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn reschedule_dead_ids_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_millis(1), "a");
        assert!(q.cancel(a));
        assert!(q.reschedule(a, Instant::from_millis(2)).is_none());
        let b = q.schedule(Instant::from_millis(1), "b");
        q.pop();
        assert!(q.reschedule(b, Instant::from_millis(2)).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_at_only_fires_exact_instant() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(3);
        q.schedule(t, "x");
        q.schedule(Instant::from_millis(9), "y");
        assert_eq!(q.pop_at(Instant::from_millis(1)), None);
        assert_eq!(q.pop_at(t), Some("x"));
        assert_eq!(q.pop_at(t), None);
        assert_eq!(q.pop().unwrap().1, "y");
    }

    #[test]
    fn next_instant_sees_earliest_live_entry() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_instant(), None);
        let a = q.schedule(Instant::from_nanos(3), "a");
        q.schedule(Instant::from_nanos(8), "b");
        assert_eq!(q.next_instant(), Some(Instant::from_nanos(3)));
        // Peeking is side-effect free on live entries: nothing popped,
        // nothing reordered.
        assert_eq!(q.next_instant(), Some(Instant::from_nanos(3)));
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.next_instant(), Some(Instant::from_nanos(8)));
        let c = q.schedule(Instant::from_nanos(5), "c");
        let c2 = q.reschedule(c, Instant::from_nanos(9)).unwrap();
        assert_eq!(q.next_instant(), Some(Instant::from_nanos(8)));
        q.cancel(c2);
        assert_eq!(q.next_instant(), Some(Instant::from_nanos(8)));
        q.pop();
        assert_eq!(q.next_instant(), None);
    }

    #[test]
    fn churn_loop_keeps_heap_bounded() {
        // Schedule-then-cancel churn with the cancelled timers far in
        // the future, so none of them ever surfaces at the heap top for
        // lazy removal. Without compaction the heap grows by one dead
        // entry per iteration; with it the heap stays within 2× the
        // live population.
        let mut q = EventQueue::new();
        let live: Vec<_> = (0..8)
            .map(|i| q.schedule(Instant::from_millis(1_000 + i), "live"))
            .collect();
        for i in 0..10_000u64 {
            let id = q.schedule(Instant::from_millis(500 + i), "churn");
            q.cancel(id);
        }
        assert_eq!(q.len(), live.len());
        assert!(
            q.heap.len() <= 2 * live.len() + 1,
            "heap holds {} entries for {} live events — lazy-cancel \
             growth is unbounded",
            q.heap.len(),
            live.len()
        );
        let p = q.profile();
        assert!(p.compactions > 0, "churn loop never compacted");
        // The survivors are untouched by compaction.
        for (i, id) in live.iter().enumerate() {
            assert!(q.cancel(*id), "live event {i} lost by compaction");
        }
    }

    #[test]
    fn compaction_preserves_order_and_accounting() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64)
            .map(|i| q.schedule(Instant::from_nanos(100 + i), i))
            .collect();
        // Cancel everything not divisible by 4; once dead entries
        // outnumber live ones the heap compacts mid-loop.
        for (i, id) in ids.iter().enumerate() {
            if i % 4 != 0 {
                q.cancel(*id);
            }
        }
        assert!(q.profile().compactions > 0);
        assert_eq!(q.len(), 16);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..64).step_by(4).collect::<Vec<_>>());
        let p = q.profile();
        assert_eq!((p.scheduled, p.popped, p.cancelled), (64, 16, 48));
    }

    #[test]
    fn slots_recycle_after_pop_and_cancel() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            let base = Instant::from_millis(round * 10 + 1);
            let a = q.schedule(base, round);
            q.schedule(base + Duration::from_millis(1), round + 100);
            q.cancel(a);
            assert_eq!(q.pop().unwrap().1, round + 100);
        }
        // The slab never grew past the peak of two concurrent events.
        assert!(q.slots.len() <= 2, "slab len {}", q.slots.len());
    }
}
