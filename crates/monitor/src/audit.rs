//! Per-link online invariant checking.
//!
//! One [`LinkAuditor`] mirrors the sender/receiver pair of one simulated
//! link, rebuilt from the trace alone. It keeps a chain per unresolved
//! user frame — `Renumbered` events move a chain from the old wire
//! sequence number to the fresh one — and checks the five LAMS-DLC
//! invariants (see [`crate::Invariant`]) as events arrive.
//!
//! Only links whose sender announced a [`telemetry::TraceEvent::SenderConfig`]
//! are audited: the HDLC baselines reuse sequence numbers by design and
//! satisfy none of the LAMS invariants.

use crate::finding::{AuditFinding, Findings, Invariant};
use crate::lifecycle::FrameLifecycle;
use crate::series::LinkSeries;
use sim_core::{Duration, Instant};
use std::collections::{HashMap, HashSet};

/// Sender timing parameters announced at `start()`.
#[derive(Clone, Copy, Debug)]
pub struct LinkTiming {
    /// Checkpoint interval `W_cp`.
    pub w_cp: Duration,
    /// Sender checkpoint timeout (`C_depth·W_cp` + slack).
    pub cp_timeout: Duration,
    /// Expected round-trip time `R`.
    pub rtt: Duration,
    /// Resolving period (`R + W_cp/2 + C_depth·W_cp` + slack).
    pub resolving: Duration,
    /// Failure-timer duration.
    pub failure: Duration,
}

/// One unresolved frame chain, keyed by its current wire sequence
/// number in [`LinkAuditor::chains`].
#[derive(Clone, Debug)]
struct Chain {
    first_seq: u64,
    first_tx: Instant,
    /// Latest bound by which the frame must resolve (release or
    /// renumber); extended when enforced recovery restarts the clock.
    deadline: Instant,
    naks: u32,
    retx: u32,
    delivered_at: Option<Instant>,
    /// True once any copy was a retransmission (for the in-flight HWM).
    is_retx: bool,
    /// Renumbered but the fresh copy has not left the sender yet.
    renumber_pending: bool,
}

/// Per-run tallies folded into the experiment metrics at run end.
#[derive(Debug, Default)]
pub struct LinkTally {
    /// Completed lifecycles (frames released).
    pub frames: u64,
    /// Unique clean deliveries.
    pub delivered: u64,
    /// NAKs observed.
    pub naks: u64,
    /// Retransmissions observed.
    pub retransmissions: u64,
    /// Peak unresolved-frame count.
    pub max_outstanding: u64,
    /// Delivery latency samples (first send → first clean arrival), s.
    pub latencies: Vec<f64>,
}

/// Mirrors one link's protocol state from its event stream.
pub struct LinkAuditor {
    key: &'static str,
    experiment: &'static str,
    timing: Option<LinkTiming>,
    cfg_node: &'static str,
    cfg_at: Instant,
    last_wire_seq: Option<u64>,
    chains: HashMap<u64, Chain>,
    delivered: HashSet<u64>,
    /// Sender side: last accepted checkpoint `(t, index, covered)`.
    last_cp_rx: Option<(Instant, u64, u64)>,
    /// Receiver side: last emitted checkpoint `(t, index)`.
    last_cp_emit: Option<(Instant, u64)>,
    enforced_since: Option<Instant>,
    last_enforced_span: Option<(Instant, Instant)>,
    failed: bool,
    retx_open: u64,
    /// Windowed series for this link over the current run.
    pub series: LinkSeries,
    /// Per-run tallies.
    pub tally: LinkTally,
    keep_lifecycles: bool,
    /// Completed lifecycles (only populated when requested).
    pub lifecycles: Vec<FrameLifecycle>,
}

impl LinkAuditor {
    /// A fresh auditor for link `key` inside `experiment`.
    pub fn new(
        key: &'static str,
        experiment: &'static str,
        window: Duration,
        keep_lifecycles: bool,
    ) -> Self {
        LinkAuditor {
            key,
            experiment,
            timing: None,
            cfg_node: "",
            cfg_at: Instant::ZERO,
            last_wire_seq: None,
            chains: HashMap::new(),
            delivered: HashSet::new(),
            last_cp_rx: None,
            last_cp_emit: None,
            enforced_since: None,
            last_enforced_span: None,
            failed: false,
            retx_open: 0,
            series: LinkSeries::new(window),
            tally: LinkTally::default(),
            keep_lifecycles,
            lifecycles: Vec::new(),
        }
    }

    /// True once the link's sender announced its configuration (i.e.
    /// this is a LAMS-DLC link and the auditor is active).
    pub fn audited(&self) -> bool {
        self.timing.is_some()
    }

    /// Unresolved chains right now.
    pub fn open_chains(&self) -> usize {
        self.chains.len()
    }

    fn find(
        &self,
        t: Instant,
        node: &'static str,
        invariant: Invariant,
        window: (Instant, Instant),
        detail: String,
    ) -> AuditFinding {
        AuditFinding {
            t,
            node,
            experiment: self.experiment,
            invariant,
            window,
            detail,
        }
    }

    /// Was enforced recovery active at any point of `[from, to]`?
    fn enforced_overlaps(&self, from: Instant, to: Instant) -> bool {
        if let Some(s) = self.enforced_since {
            if s <= to {
                return true;
            }
        }
        if let Some((s, e)) = self.last_enforced_span {
            return s <= to && e >= from;
        }
        false
    }

    /// `SenderConfig`: arm the auditor for this link.
    pub fn on_sender_config(&mut self, t: Instant, node: &'static str, timing: LinkTiming) {
        self.timing = Some(timing);
        self.cfg_node = node;
        self.cfg_at = t;
    }

    /// `IFrameTx` at the sender.
    pub fn on_tx(
        &mut self,
        t: Instant,
        node: &'static str,
        seq: u64,
        retx: bool,
        out: &mut Findings,
    ) {
        let Some(timing) = self.timing else { return };
        // (b) Wire sequence numbers are strictly monotone: every
        // transmission, first or repeated, consumes a fresh number.
        if let Some(last) = self.last_wire_seq {
            if seq <= last {
                out.push(self.find(
                    t,
                    node,
                    Invariant::MonotoneSeq,
                    (t, t),
                    format!("wire seq {seq} not above previous {last}"),
                ));
            }
        }
        self.last_wire_seq = Some(self.last_wire_seq.map_or(seq, |l| l.max(seq)));

        if retx {
            self.tally.retransmissions += 1;
            match self.chains.get_mut(&seq) {
                Some(chain) if chain.renumber_pending => {
                    chain.renumber_pending = false;
                    chain.retx += 1;
                    // The retransmitted copy restarts its own resolving
                    // period, like any outstanding frame.
                    chain.deadline = t + timing.resolving;
                    if !chain.is_retx {
                        chain.is_retx = true;
                        self.retx_open += 1;
                    }
                }
                _ => out.push(self.find(
                    t,
                    node,
                    Invariant::MonotoneSeq,
                    (t, t),
                    format!("retransmission of seq {seq} without a renumbering event"),
                )),
            }
        } else {
            if self.chains.contains_key(&seq) {
                out.push(self.find(
                    t,
                    node,
                    Invariant::MonotoneSeq,
                    (t, t),
                    format!("first transmission reuses live seq {seq}"),
                ));
            }
            self.chains.insert(
                seq,
                Chain {
                    first_seq: seq,
                    first_tx: t,
                    deadline: t + timing.resolving,
                    naks: 0,
                    retx: 0,
                    delivered_at: None,
                    is_retx: false,
                    renumber_pending: false,
                },
            );
        }
        let outstanding = self.chains.len() as u64;
        self.tally.max_outstanding = self.tally.max_outstanding.max(outstanding);
        let retx_open = self.retx_open;
        let w = self.series.at(t);
        w.tx += 1;
        if retx {
            w.retx += 1;
        }
        w.outstanding_hwm = w.outstanding_hwm.max(outstanding);
        w.retx_in_flight_hwm = w.retx_in_flight_hwm.max(retx_open);
    }

    /// `IFrameRx` at the receiver.
    pub fn on_rx(&mut self, t: Instant, seq: u64, clean: bool) {
        if self.timing.is_none() {
            return;
        }
        if !clean {
            return;
        }
        if self.delivered.insert(seq) {
            self.tally.delivered += 1;
            self.series.at(t).delivered += 1;
        }
        if let Some(chain) = self.chains.get_mut(&seq) {
            if chain.delivered_at.is_none() {
                chain.delivered_at = Some(t);
            }
        }
    }

    /// `Nak` at the receiver.
    pub fn on_nak(&mut self, t: Instant, seq: u64) {
        if self.timing.is_none() {
            return;
        }
        self.tally.naks += 1;
        self.series.at(t).naks += 1;
        if let Some(chain) = self.chains.get_mut(&seq) {
            chain.naks += 1;
        }
    }

    /// `CheckpointEmitted` at the receiver: cadence invariant (c),
    /// receiver side — consecutive emissions at most `W_cp` apart, with
    /// contiguous indices.
    pub fn on_cp_emit(&mut self, t: Instant, node: &'static str, index: u64, out: &mut Findings) {
        let Some(timing) = self.timing else { return };
        if let Some((prev_t, prev_idx)) = self.last_cp_emit {
            let gap = t.duration_since(prev_t);
            if gap > timing.w_cp {
                out.push(self.find(
                    t,
                    node,
                    Invariant::CheckpointCadence,
                    (prev_t, t),
                    format!(
                        "checkpoint emission gap {:.6}s exceeds W_cp {:.6}s",
                        gap.as_secs_f64(),
                        timing.w_cp.as_secs_f64()
                    ),
                ));
            }
            if index != prev_idx + 1 {
                out.push(self.find(
                    t,
                    node,
                    Invariant::StreamIntegrity,
                    (prev_t, t),
                    format!("checkpoint index {index} after {prev_idx} (must be contiguous)"),
                ));
            }
        }
        self.last_cp_emit = Some((t, index));
    }

    /// `CheckpointReceived` at the sender: cadence invariant (c), sender
    /// side — silence beyond the checkpoint timeout is only legal under
    /// enforced recovery.
    pub fn on_cp_rx(
        &mut self,
        t: Instant,
        node: &'static str,
        index: u64,
        covered: u64,
        out: &mut Findings,
    ) {
        let Some(timing) = self.timing else { return };
        let (since, bound) = match self.last_cp_rx {
            Some((prev_t, _, _)) => (prev_t, timing.cp_timeout),
            // First checkpoint: the sender grants one RTT of grace on
            // top of the timeout (mirrors Sender::start()).
            None => (self.cfg_at, timing.rtt + timing.cp_timeout),
        };
        let gap = t.duration_since(since);
        if gap > bound && !self.enforced_overlaps(since, t) {
            out.push(self.find(
                t,
                node,
                Invariant::CheckpointCadence,
                (since, t),
                format!(
                    "checkpoint silence {:.6}s exceeds {:.6}s without enforced recovery",
                    gap.as_secs_f64(),
                    bound.as_secs_f64()
                ),
            ));
        }
        if let Some((prev_t, prev_idx, _)) = self.last_cp_rx {
            if index <= prev_idx {
                out.push(self.find(
                    t,
                    node,
                    Invariant::StreamIntegrity,
                    (prev_t, t),
                    format!("accepted checkpoint index {index} not above {prev_idx}"),
                ));
            }
        }
        self.last_cp_rx = Some((t, index, covered));
    }

    /// `Renumbered` at the sender: the chain moves to its fresh number.
    /// Invariant (e): the old copy's fate was decided within its
    /// resolving period (one extra period of drain allowance covers the
    /// retransmit-queue wait between requeue and renumbering).
    pub fn on_renumbered(
        &mut self,
        t: Instant,
        node: &'static str,
        old_seq: u64,
        new_seq: u64,
        out: &mut Findings,
    ) {
        let Some(timing) = self.timing else { return };
        match self.chains.remove(&old_seq) {
            Some(chain) => {
                let bound = chain.deadline + timing.resolving;
                if t > bound {
                    out.push(self.find(
                        t,
                        node,
                        Invariant::NumberingBound,
                        (chain.first_tx, t),
                        format!(
                            "seq {old_seq} renumbered at {:.6}s, past its resolving bound {:.6}s",
                            t.as_secs_f64(),
                            bound.as_secs_f64()
                        ),
                    ));
                }
                let mut chain = chain;
                chain.renumber_pending = true;
                self.chains.insert(new_seq, chain);
            }
            None => out.push(self.find(
                t,
                node,
                Invariant::StreamIntegrity,
                (t, t),
                format!("renumbering of unknown seq {old_seq} -> {new_seq}"),
            )),
        }
    }

    /// `EnforcedRecoveryStarted`: every outstanding frame's resolution
    /// clock restarts (mirrors the sender's deadline extension).
    pub fn on_enforced_start(&mut self, t: Instant) {
        let Some(timing) = self.timing else { return };
        if self.enforced_since.is_none() {
            self.enforced_since = Some(t);
        }
        let extended = t + timing.failure + timing.resolving;
        for chain in self.chains.values_mut() {
            if chain.deadline < extended {
                chain.deadline = extended;
            }
        }
    }

    /// `StopGo` with the stop bit set: flow control throttles the
    /// sender's drain rate, so renumbered copies wait longer in the
    /// retransmit queue than the full-line-rate numbering bound allows
    /// (§3.4). Restart every open chain's resolution clock, mirroring
    /// the slower drain.
    pub fn on_stop(&mut self, t: Instant) {
        let Some(timing) = self.timing else { return };
        let extended = t + timing.resolving;
        for chain in self.chains.values_mut() {
            if chain.deadline < extended {
                chain.deadline = extended;
            }
        }
    }

    /// `EnforcedRecoveryResolved`: close the enforced span.
    pub fn on_enforced_end(&mut self, t: Instant) {
        if let Some(s) = self.enforced_since.take() {
            self.last_enforced_span = Some((s, t));
        }
    }

    /// `LinkFailed`: suppress end-of-run unresolved-frame findings.
    pub fn on_link_failed(&mut self) {
        self.failed = true;
    }

    /// `BufferRelease` at the sender: invariants (a), (d) and (e).
    pub fn on_release(&mut self, t: Instant, node: &'static str, seq: u64, out: &mut Findings) {
        if self.timing.is_none() {
            return;
        }
        // (d) Release happens inside checkpoint processing, at the
        // checkpoint instant, and only up to the covered horizon.
        match self.last_cp_rx {
            None => out.push(self.find(
                t,
                node,
                Invariant::ReleaseOnAck,
                (t, t),
                format!("seq {seq} released before any checkpoint arrived"),
            )),
            Some((cp_t, _, covered)) => {
                if cp_t != t {
                    out.push(self.find(
                        t,
                        node,
                        Invariant::ReleaseOnAck,
                        (cp_t, t),
                        format!(
                            "seq {seq} released at {:.6}s, not at the covering checkpoint ({:.6}s)",
                            t.as_secs_f64(),
                            cp_t.as_secs_f64()
                        ),
                    ));
                }
                if seq > covered {
                    out.push(self.find(
                        t,
                        node,
                        Invariant::ReleaseOnAck,
                        (cp_t, t),
                        format!("seq {seq} released beyond the covered horizon {covered}"),
                    ));
                }
            }
        }
        // (a) The released copy must have arrived clean at the receiver.
        if !self.delivered.contains(&seq) {
            out.push(self.find(
                t,
                node,
                Invariant::NoLoss,
                (t, t),
                format!("seq {seq} released without a clean arrival at the receiver"),
            ));
        }
        match self.chains.remove(&seq) {
            Some(chain) => {
                // (e) Release within the (possibly extended) resolving
                // bound of the released copy.
                if t > chain.deadline {
                    out.push(self.find(
                        t,
                        node,
                        Invariant::NumberingBound,
                        (chain.first_tx, t),
                        format!(
                            "seq {seq} released at {:.6}s, past its resolving bound {:.6}s",
                            t.as_secs_f64(),
                            chain.deadline.as_secs_f64()
                        ),
                    ));
                }
                self.tally.frames += 1;
                if let Some(d) = chain.delivered_at {
                    self.tally
                        .latencies
                        .push(d.duration_since(chain.first_tx).as_secs_f64());
                }
                if chain.is_retx {
                    self.retx_open = self.retx_open.saturating_sub(1);
                }
                self.series.at(t).releases += 1;
                if self.keep_lifecycles {
                    self.lifecycles.push(FrameLifecycle {
                        link: self.key,
                        first_seq: chain.first_seq,
                        final_seq: seq,
                        first_tx: chain.first_tx,
                        naks: chain.naks,
                        retransmits: chain.retx,
                        delivered_at: chain.delivered_at,
                        released_at: Some(t),
                    });
                }
            }
            None => out.push(self.find(
                t,
                node,
                Invariant::StreamIntegrity,
                (t, t),
                format!("release of unknown seq {seq}"),
            )),
        }
    }

    /// End of run: with a clean finish (no deadline, no link failure)
    /// every chain must have resolved — invariant (a).
    pub fn on_run_finished(&mut self, t: Instant, deadline_hit: bool, out: &mut Findings) {
        if self.timing.is_none() {
            return;
        }
        if deadline_hit || self.failed {
            return;
        }
        let mut open: Vec<(&u64, &Chain)> = self.chains.iter().collect();
        open.sort_by_key(|(seq, _)| **seq);
        for (seq, chain) in open {
            out.push(self.find(
                t,
                self.cfg_node,
                Invariant::NoLoss,
                (chain.first_tx, t),
                format!(
                    "seq {seq} (first sent {:.6}s) never resolved by run end",
                    chain.first_tx.as_secs_f64()
                ),
            ));
        }
    }
}
