//! Conservative sharded execution: the coordinator half.
//!
//! [`run_sharded`] spawns one thread per shard and drives them in
//! supersteps. Each round it grants every shard a window
//!
//! ```text
//! G_s = min(H_s, LB, deadline)      H_s = min over inbound cut links
//!                                         (C_sender + link delay)
//! ```
//!
//! where `C_sender` is the sending shard's committed time. `H_s` is the
//! classic conservative-DES safe horizon: every *future* transmission
//! from a neighbour arrives strictly after its committed time plus the
//! link's propagation delay (serialization adds more), so processing
//! events at or before `H_s` can never be invalidated by a frame still
//! to be routed. `LB` is a lower bound on the run's finish time — for a
//! locally-done shard its `done_since`, otherwise the earliest instant
//! its state can change (next queued event, safe horizon, or earliest
//! pending routed arrival), maximised over shards. Capping grants at
//! `LB` keeps every shard from processing past the instant the whole
//! simulation completes, so the set of processed events — and with it
//! every trace record, counter and collector statistic — is identical
//! at any shard count.
//!
//! Termination mirrors the serial engine's exits: completion at
//! `T* = max(done_since)` once every shard has committed through `T*`
//! with nothing left to route; deadline when every shard has committed
//! to the deadline without completing; stall (queue exhaustion) at the
//! last processed instant; and sender-declared link failure at the
//! failure instant.
//!
//! Tracing: the coordinator emits `RunStarted`/`RunFinished` itself and
//! merges the per-shard buffered records by `(t, node label)` — a
//! stable sort applied at *every* shard count (including one), so the
//! merged stream is byte-identical across counts as long as no two
//! shards emit under the same label at the same instant. Endpoint,
//! collector and per-experiment labels are shard-owned by construction;
//! the shared `"channel"` label (outage drops) is the one caveat,
//! documented in DESIGN.md §11.

use crate::collect::Collect;
use crate::endpoint::{RxEndpoint, TxEndpoint};
use crate::shard::{CutPlan, FinishedShard, Inbound, ShardSim, WindowSummary};
use crate::topology::TopologyError;
use sim_core::{Duration, Instant, QueueProfile, RunTimer};
use std::sync::mpsc;
use telemetry::{BufferSink, TraceEvent, TraceRecord};

/// Everything a sharded run hands back: per-shard user outputs (shard
/// order) plus the run-level facts the coordinator owns.
pub struct ShardedOutcome<O> {
    /// One output per shard, produced by the `finish` closure.
    pub outputs: Vec<O>,
    /// Instant the run completed (or the deadline / failure instant).
    pub finished_at: Instant,
    /// True if the deadline fired before completion.
    pub deadline_hit: bool,
    /// All shard queues' profiling snapshots, absorbed into one.
    pub queue: QueueProfile,
    /// Wall-clock seconds the whole sharded run took.
    pub wall_secs: f64,
}

enum Cmd<F> {
    Window {
        grant: Instant,
        stop_on_done: bool,
        arrivals: Vec<Inbound<F>>,
    },
    Finish {
        finished_at: Instant,
        deadline_hit: bool,
    },
}

struct ShardDone<O> {
    out: O,
    queue: QueueProfile,
    records: Vec<TraceRecord>,
}

enum Up<F, O> {
    Built(usize, Option<TopologyError>),
    Window(usize, WindowSummary<F>),
    Done(usize, Box<ShardDone<O>>),
}

/// Coordinator-side view of one shard between rounds.
struct ShardState<F> {
    committed: Instant,
    next_event: Option<Instant>,
    done_since: Option<Instant>,
    failed_at: Option<Instant>,
    last_event_at: Instant,
    /// Routed cut-link arrivals awaiting injection with the next grant.
    pending: Vec<Inbound<F>>,
}

/// Run one simulation split across `plan.n_shards` OS threads.
///
/// `build(s)` constructs shard `s`'s [`ShardSim`] *on its thread* (so
/// `Rc`-based trace handles resolve against the shard's buffered sink);
/// `finish(s, pieces)` turns the finished shard into a `Send`able
/// output on the same thread. Outputs come back in shard order.
///
/// With one shard the same machinery runs the whole simulation in a
/// single window with serial stop-on-done semantics — the degenerate
/// case is the reference the multi-shard runs are checked against.
pub fn run_sharded<T, R, C, O, Build, Fin>(
    plan: &CutPlan,
    deadline: Duration,
    build: Build,
    finish: Fin,
) -> Result<ShardedOutcome<O>, TopologyError>
where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
    T::Frame: Send,
    O: Send,
    Build: Fn(usize) -> Result<ShardSim<T, R, C>, TopologyError> + Sync,
    Fin: Fn(usize, FinishedShard<T, R, C>) -> O + Sync,
{
    let n = plan.n_shards.max(1);
    let timer = RunTimer::start();
    let forward_traces = telemetry::global_sink().is_some();
    let deadline = Instant::ZERO + deadline;

    // Per-shard inbound cut lists for the safe horizon, and the
    // link → destination routing table.
    let mut inbound_cuts: Vec<Vec<(usize, Duration)>> = vec![Vec::new(); n];
    let mut route: Vec<(usize, usize)> = Vec::new(); // (global link, to_shard)
    for c in &plan.cuts {
        inbound_cuts[c.to_shard].push((c.from_shard, c.delay));
        route.push((c.link.0, c.to_shard));
    }
    route.sort_unstable();

    let (up_tx, up_rx) = mpsc::channel::<Up<T::Frame, O>>();
    let result = std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(n);
        for s in 0..n {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<T::Frame>>();
            cmd_txs.push(cmd_tx);
            let up = up_tx.clone();
            let build = &build;
            let finish = &finish;
            scope.spawn(move || shard_thread(s, cmd_rx, up, build, finish, forward_traces));
        }
        drop(up_tx);
        coordinate(n, deadline, &inbound_cuts, &route, cmd_txs, up_rx)
    });
    let (outputs, finished_at, deadline_hit, queue, records) = result?;

    // Deterministic trace merge: shard-order concatenation, stable-
    // sorted by (instant, node label) — the same rule at every shard
    // count — replayed into the caller's sink between the coordinator's
    // own run markers.
    let sim_trace = telemetry::global_handle("sim");
    sim_trace.emit(Instant::ZERO, || TraceEvent::RunStarted);
    if let Some(sink) = telemetry::global_sink() {
        let mut merged: Vec<TraceRecord> = records.into_iter().flatten().collect();
        merged.sort_by(|a, b| (a.t, a.node).cmp(&(b.t, b.node)));
        sink.borrow_mut().record_all(&merged);
    }
    sim_trace.emit(finished_at, || TraceEvent::RunFinished { deadline_hit });

    Ok(ShardedOutcome {
        outputs,
        finished_at,
        deadline_hit,
        queue,
        wall_secs: timer.elapsed_secs(),
    })
}

/// One shard's thread: build (under a buffered trace sink), serve
/// granted windows, then finish and ship the pieces home.
fn shard_thread<T, R, C, O, Build, Fin>(
    s: usize,
    cmds: mpsc::Receiver<Cmd<T::Frame>>,
    up: mpsc::Sender<Up<T::Frame, O>>,
    build: &Build,
    finish: &Fin,
    forward_traces: bool,
) where
    T: TxEndpoint,
    R: RxEndpoint<Frame = T::Frame>,
    C: Collect,
    Build: Fn(usize) -> Result<ShardSim<T, R, C>, TopologyError>,
    Fin: Fn(usize, FinishedShard<T, R, C>) -> O,
{
    let sink = if forward_traces {
        let sink = std::rc::Rc::new(std::cell::RefCell::new(BufferSink::new()));
        telemetry::install_global(sink.clone());
        Some(sink)
    } else {
        None
    };
    let uninstall = |sink: &Option<std::rc::Rc<std::cell::RefCell<BufferSink>>>| {
        if sink.is_some() {
            telemetry::uninstall_global();
        }
    };
    let mut sim = match build(s) {
        Ok(sim) => {
            let _ = up.send(Up::Built(s, None));
            sim
        }
        Err(e) => {
            uninstall(&sink);
            let _ = up.send(Up::Built(s, Some(e)));
            return;
        }
    };
    sim.start();
    loop {
        match cmds.recv() {
            Ok(Cmd::Window {
                grant,
                stop_on_done,
                arrivals,
            }) => {
                sim.inject(arrivals);
                let summary = sim.run_window(grant, stop_on_done);
                let _ = up.send(Up::Window(s, summary));
            }
            Ok(Cmd::Finish {
                finished_at,
                deadline_hit,
            }) => {
                let queue = sim.queue_profile();
                let out = finish(s, sim.into_finished(finished_at, deadline_hit));
                uninstall(&sink);
                let records = sink.map(|b| b.borrow_mut().take()).unwrap_or_default();
                let _ = up.send(Up::Done(
                    s,
                    Box::new(ShardDone {
                        out,
                        queue,
                        records,
                    }),
                ));
                return;
            }
            // Coordinator dropped the command channel (build error on a
            // sibling shard): exit without finishing.
            Err(_) => {
                uninstall(&sink);
                return;
            }
        }
    }
}

type CoordResult<O> =
    Result<(Vec<O>, Instant, bool, QueueProfile, Vec<Vec<TraceRecord>>), TopologyError>;

/// The superstep loop. Runs on the caller's thread inside the scope.
fn coordinate<F: Send, O: Send>(
    n: usize,
    deadline: Instant,
    inbound_cuts: &[Vec<(usize, Duration)>],
    route: &[(usize, usize)],
    cmd_txs: Vec<mpsc::Sender<Cmd<F>>>,
    up_rx: mpsc::Receiver<Up<F, O>>,
) -> CoordResult<O> {
    // Phase 1: all shards built?
    let mut build_errors = Vec::new();
    for _ in 0..n {
        match up_rx.recv() {
            Ok(Up::Built(_, None)) => {}
            Ok(Up::Built(s, Some(e))) => build_errors.push((s, e)),
            Ok(_) => unreachable!("first message per shard is Built"),
            Err(_) => build_errors.push((n, TopologyError(vec!["shard thread died".into()]))),
        }
    }
    if !build_errors.is_empty() {
        build_errors.sort_by_key(|(s, _)| *s);
        let msgs = build_errors
            .into_iter()
            .flat_map(|(s, e)| e.0.into_iter().map(move |m| format!("shard {s}: {m}")))
            .collect();
        // Dropping cmd_txs unblocks the surviving threads.
        drop(cmd_txs);
        return Err(TopologyError(msgs));
    }

    // Phase 2: supersteps.
    let mut states: Vec<ShardState<F>> = (0..n)
        .map(|_| ShardState {
            committed: Instant::ZERO,
            next_event: Some(Instant::ZERO),
            done_since: None,
            failed_at: None,
            last_event_at: Instant::ZERO,
            pending: Vec::new(),
        })
        .collect();
    let to_shard = |link: usize| -> usize {
        route[route
            .binary_search_by_key(&link, |(l, _)| *l)
            .expect("outbound batch on a non-cut link")]
        .1
    };

    let (finished_at, deadline_hit) = loop {
        // Exits, in the serial engine's priority order: failure, global
        // completion, queue exhaustion, deadline.
        if let Some(f) = states.iter().filter_map(|st| st.failed_at).min() {
            break (f, false);
        }
        let all_done = states.iter().all(|st| st.done_since.is_some());
        let no_pending = states.iter().all(|st| st.pending.is_empty());
        if all_done && no_pending {
            let t_star = states
                .iter()
                .filter_map(|st| st.done_since)
                .max()
                .expect("all done implies a done_since");
            if states.iter().all(|st| st.committed >= t_star) {
                break (t_star, false);
            }
        }
        let any_events = states.iter().any(|st| st.next_event.is_some());
        if !any_events && no_pending && !all_done {
            // Queue exhaustion without completion: the serial loop just
            // runs out of events.
            let last = states.iter().map(|st| st.last_event_at).max();
            break (last.unwrap_or(Instant::ZERO), false);
        }
        if !all_done && states.iter().all(|st| st.committed >= deadline) {
            break (deadline, true);
        }

        // Safe horizons from the neighbours' committed times; `None` =
        // no inbound cuts, unbounded.
        let horizons: Vec<Option<Instant>> = (0..n)
            .map(|s| {
                inbound_cuts[s]
                    .iter()
                    .map(|&(from, delay)| states[from].committed + delay)
                    .min()
            })
            .collect();

        // Finish-time lower bound LB: no shard may process past it.
        // `None` = unbounded (some shard can never finish locally; the
        // run ends by deadline or failure, both already capped).
        let mut lb: Option<Instant> = Some(Instant::ZERO);
        for (s, st) in states.iter().enumerate() {
            let term = match st.done_since {
                Some(d) => Some(d),
                None => {
                    let mut t: Option<Instant> = horizons[s];
                    let mut cap = |c: Option<Instant>| {
                        t = match (t, c) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, None) => a,
                            (None, b) => b,
                        };
                    };
                    cap(st.next_event);
                    cap(st.pending.iter().map(|a| a.at).min());
                    t
                }
            };
            lb = match (lb, term) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }

        // Grants. With one shard there is nothing to coordinate: grant
        // the deadline and stop at local (= global) done, exactly like
        // the serial loop.
        let mut awaiting = 0usize;
        for (s, st) in states.iter_mut().enumerate() {
            let mut grant = deadline;
            if n > 1 {
                if let Some(h) = horizons[s] {
                    grant = grant.min(h);
                }
                if let Some(lb) = lb {
                    grant = grant.min(lb);
                }
                grant = grant.max(st.committed);
            }
            // A window is useful when it can advance the shard, deliver
            // routed arrivals, or cover events at exactly the committed
            // instant (the t = 0 bootstrap round).
            if grant > st.committed || !st.pending.is_empty() || st.next_event == Some(st.committed)
            {
                let arrivals = {
                    let mut a = std::mem::take(&mut st.pending);
                    a.sort_by_key(|x| (x.at, x.link, x.seq));
                    a
                };
                cmd_txs[s]
                    .send(Cmd::Window {
                        grant,
                        stop_on_done: n == 1,
                        arrivals,
                    })
                    .expect("shard thread alive");
                awaiting += 1;
            }
        }
        assert!(awaiting > 0, "conservative grant loop must make progress");

        for _ in 0..awaiting {
            match up_rx.recv().expect("shard thread alive") {
                Up::Window(s, summary) => {
                    let outbound = {
                        let st = &mut states[s];
                        st.committed = summary.committed;
                        st.next_event = summary.next_event;
                        st.done_since = summary.done_since;
                        st.failed_at = summary.failed_at;
                        st.last_event_at = st.last_event_at.max(summary.last_event_at);
                        summary.outbound
                    };
                    for a in outbound {
                        states[to_shard(a.link)].pending.push(a);
                    }
                }
                _ => unreachable!("windows answer with Window"),
            }
        }
    };

    // Phase 3: finish.
    for tx in &cmd_txs {
        tx.send(Cmd::Finish {
            finished_at,
            deadline_hit,
        })
        .expect("shard thread alive");
    }
    let mut outputs: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let mut records: Vec<Vec<TraceRecord>> = (0..n).map(|_| Vec::new()).collect();
    let mut queue = QueueProfile::default();
    for _ in 0..n {
        match up_rx.recv().expect("shard thread alive") {
            Up::Done(s, done) => {
                queue.absorb(&done.queue);
                outputs[s] = Some(done.out);
                records[s] = done.records;
            }
            _ => unreachable!("finish answers with Done"),
        }
    }
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every shard reported Done"))
        .collect();
    Ok((outputs, finished_at, deadline_hit, queue, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FrameMeta;
    use crate::link::{Channel, DelayModel, ErrorModel};
    use crate::shard::{Partition, ShardBuilder};
    use crate::topology::{LinkSpec, NodeId, NodeRole, Topology};
    use crate::traffic::{Pattern, TrafficGen};
    use bytes::Bytes;
    use sim_core::SeedSplitter;
    use std::collections::{BTreeMap, VecDeque};

    /// Toy protocol: one frame per SDU, no acknowledgements, no timers.
    struct EchoTx {
        queue: VecDeque<u64>,
        sent: u64,
    }

    impl TxEndpoint for EchoTx {
        type Frame = u64;
        fn start(&mut self, _now: Instant) {}
        fn push(&mut self, id: u64, _payload: Bytes) -> bool {
            self.queue.push_back(id);
            true
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            let f = self.queue.pop_front();
            if f.is_some() {
                self.sent += 1;
            }
            f
        }
        fn handle_frame(&mut self, _now: Instant, _frame: u64, _ok: bool) {}
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn buffered(&self) -> usize {
            self.queue.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
        fn drain_holding(&mut self, _out: &mut Vec<f64>) {}
        fn transmissions(&self) -> u64 {
            self.sent
        }
        fn retransmissions(&self) -> u64 {
            0
        }
    }

    struct EchoRx {
        pending: VecDeque<u64>,
    }

    impl RxEndpoint for EchoRx {
        type Frame = u64;
        fn start(&mut self, _now: Instant) {}
        fn handle_frame(&mut self, _now: Instant, frame: u64, ok: bool) {
            if ok {
                self.pending.push_back(frame);
            }
        }
        fn on_timeout(&mut self, _now: Instant) {}
        fn poll_timeout(&self) -> Option<Instant> {
            None
        }
        fn poll_transmit(&mut self, _now: Instant) -> Option<u64> {
            None
        }
        fn poll_deliver(&mut self, _now: Instant) -> Option<(u64, usize)> {
            self.pending.pop_front().map(|id| (id, 64))
        }
        fn occupancy(&self) -> usize {
            self.pending.len()
        }
        fn meta(_frame: &u64) -> FrameMeta {
            FrameMeta {
                bytes: 64,
                is_info: true,
            }
        }
    }

    #[derive(Default)]
    struct CountCollector {
        delivered: u64,
        last_at: Instant,
    }

    impl Collect for CountCollector {
        fn on_push(&mut self, _now: Instant, _id: u64) {}
        fn on_deliver(&mut self, now: Instant, _id: u64) {
            self.delivered += 1;
            self.last_at = now;
        }
        fn on_holding(&mut self, _samples: &[f64]) {}
        fn sample(&mut self, _now: Instant, _tx: usize, _rx: usize, _rate: f64) {}
        fn delivered_unique(&self) -> u64 {
            self.delivered
        }
    }

    fn clean_channel() -> Channel {
        Channel::new(
            1e6,
            DelayModel::Fixed(Duration::from_millis(1)),
            ErrorModel::Clean,
        )
    }

    fn chain_topo(hops: usize) -> Topology {
        let mut t = Topology::default();
        t.roles.push(NodeRole::Source);
        for _ in 1..hops {
            t.roles.push(NodeRole::Relay);
        }
        t.roles.push(NodeRole::Sink);
        for i in 0..hops {
            t.links.push(LinkSpec {
                from: NodeId(i),
                to: NodeId(i + 1),
                dir: "fwd",
            });
        }
        t
    }

    /// Run an `hops`-hop forward-only echo chain (hop i = global link i)
    /// split across `shards` shards; `n` SDUs batch-pushed at t = 0.
    fn run_chain(hops: usize, shards: usize, n: u64) -> (Instant, Instant, bool, u64, Vec<u64>) {
        let topo = chain_topo(hops);
        let part = Partition::contiguous(hops + 1, shards);
        let delays = vec![DelayModel::Fixed(Duration::from_millis(1)); hops];
        let plan = part.plan(&topo, &delays).expect("valid partition");
        let ranges: Vec<(usize, usize)> = (0..part.n_shards())
            .map(|s| {
                let mine = (0..=hops).filter(|&i| part.shard_of(NodeId(i)) == Some(s));
                let lo = mine.clone().min().expect("no shard is empty");
                (lo, mine.max().expect("no shard is empty"))
            })
            .collect();
        let out = run_sharded(
            &plan,
            Duration::from_secs(60),
            |s| {
                let (lo, hi) = ranges[s];
                let mut b: ShardBuilder<EchoTx, EchoRx, CountCollector> = ShardBuilder::new(64);
                // Links ascending by global id: the inbound stub (if
                // any), then this shard's owned hops. Hop `hi` is a cut
                // when node hi+1 lives in the next shard.
                let stub = (lo > 0).then(|| b.cut_in(lo - 1));
                let mut owned = Vec::new(); // (hop, local link)
                for i in lo..=hi.min(hops.saturating_sub(1)) {
                    let l = if i == hi {
                        b.cut_out(i, clean_channel(), "fwd")
                    } else {
                        b.link(i, clean_channel(), "fwd")
                    };
                    owned.push((i, l));
                }
                let mut txs = BTreeMap::new();
                for &(i, l) in &owned {
                    txs.insert(
                        i,
                        b.tx(
                            l,
                            EchoTx {
                                queue: VecDeque::new(),
                                sent: 0,
                            },
                        ),
                    );
                }
                // Receivers for hops terminating in this shard: the stub
                // hop and every non-cut owned hop. Draining right after
                // the arrival link lets a forward catch the same pump
                // pass, like the serial relay wiring.
                let mut rxs = Vec::new(); // (hop, rx, local link)
                if let Some(sl) = stub {
                    rxs.push((
                        lo - 1,
                        b.rx_silent(EchoRx {
                            pending: VecDeque::new(),
                        }),
                        sl,
                    ));
                }
                for &(i, l) in &owned {
                    if i < hi {
                        rxs.push((
                            i,
                            b.rx_silent(EchoRx {
                                pending: VecDeque::new(),
                            }),
                            l,
                        ));
                    }
                }
                for &(j, r, l) in &rxs {
                    b.listen(l, r);
                    b.drain_after(r, l);
                    if j + 1 == hops {
                        let c = b.collector(CountCollector::default());
                        b.expect(c, n);
                        b.deliver(r, c);
                    } else {
                        b.forward(r, txs[&(j + 1)]);
                    }
                }
                if lo == 0 {
                    let gen = TrafficGen::new(Pattern::Batch, n, SeedSplitter::new(1).stream(2));
                    b.source(gen, txs[&0], None, 0);
                }
                b.build()
            },
            |_s, fin| {
                let delivered: u64 = fin.collectors.iter().map(|c| c.delivered).sum();
                let last_at = fin
                    .collectors
                    .iter()
                    .map(|c| c.last_at)
                    .max()
                    .unwrap_or(Instant::ZERO);
                let sent: Vec<u64> = fin.txs.iter().map(|t| t.sent).collect();
                (delivered, last_at, sent)
            },
        )
        .expect("sharded run");
        let delivered: u64 = out.outputs.iter().map(|(d, _, _)| d).sum();
        let last_at = out
            .outputs
            .iter()
            .map(|(_, a, _)| *a)
            .max()
            .expect("at least one shard");
        let sent: Vec<u64> = out.outputs.iter().flat_map(|(_, _, s)| s.clone()).collect();
        (out.finished_at, last_at, out.deadline_hit, delivered, sent)
    }

    #[test]
    fn echo_chain_identical_at_every_shard_count() {
        let hops = 4;
        let n = 9;
        let serial = run_chain(hops, 1, n);
        for shards in 2..=4 {
            let sharded = run_chain(hops, shards, n);
            assert_eq!(serial, sharded, "shards={shards} diverged");
        }
        let (finished_at, last_at, deadline_hit, delivered, sent) = serial;
        assert_eq!(delivered, n, "all SDUs delivered");
        assert_eq!(sent, vec![n; hops], "every hop forwarded every frame");
        assert!(!deadline_hit);
        assert_eq!(finished_at, last_at, "run completes at the last delivery");
    }

    #[test]
    fn build_error_surfaces_with_shard_prefix() {
        let plan = CutPlan {
            n_shards: 2,
            cuts: Vec::new(),
        };
        let err = match run_sharded(
            &plan,
            Duration::from_secs(1),
            |_s| -> Result<ShardSim<EchoTx, EchoRx, CountCollector>, TopologyError> {
                Err(TopologyError(vec!["boom".into()]))
            },
            |_s, _fin| (),
        ) {
            Err(e) => e,
            Ok(_) => panic!("build errors must propagate"),
        };
        let msg = err.to_string();
        assert!(msg.contains("shard 0: boom"), "{msg}");
        assert!(msg.contains("shard 1: boom"), "{msg}");
    }
}
