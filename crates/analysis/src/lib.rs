#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! # analysis
//!
//! The complete closed-form performance model from §4 of *The LAMS-DLC
//! ARQ Protocol* (Ward & Choi, 1991), for both LAMS-DLC and the SR-HDLC
//! baseline:
//!
//! * [`periods`] — retransmission probabilities `P_R`, mean period count
//!   `s̄ = 1/(1−P_R)`, checkpoint count `n̄_cp`;
//! * [`delivery`] — period lengths `D_trans`/`D_retrn` and the
//!   low-traffic delivery time `D_low(N)`;
//! * [`holding`] — sender holding times `H_frame` (the recursive
//!   derivation) and HDLC's unbounded tail;
//! * [`buffer`] — transparent buffer sizes: finite `B_LAMS`,
//!   `B_HDLC = ∞` plus its growth rate;
//! * [`throughput`] — the high-traffic `N_total` sub-period recursion,
//!   `D_high`, and throughput efficiency `η`;
//! * [`numbering`] — bounded LAMS numbering vs HDLC's error-dependent
//!   requirement;
//! * [`framesize`] — the optimal-frame-length tradeoff the §1 NBDT
//!   discussion motivates (renumbering frees the frame size).
//!
//! Every function takes a [`LinkParams`], which can be built from the
//! paper's parameterisation ([`LinkParams::paper_default`]), from raw
//! channel BER via the FEC grades, or from an orbital
//! [`orbit::LinkProfile`]. The experiment harness evaluates these
//! alongside discrete-event simulations of the actual protocols to
//! validate every curve.

pub mod buffer;
pub mod delivery;
pub mod framesize;
pub mod gbn;
pub mod holding;
pub mod numbering;
pub mod params;
pub mod periods;
pub mod throughput;

pub use params::{frame_error_prob, LinkParams};
