//! Frame check sequences.
//!
//! HDLC and LAMS-DLC frames both carry a CRC so the receiver can treat any
//! corruption as a *detectable* error (paper assumption 9: frame losses are
//! detectable errors; undetectable CRC violations are out of scope).
//!
//! Two generators are provided:
//!
//! * [`Crc16Ccitt`] — the X.25/HDLC FCS (poly 0x1021, reflected, init
//!   0xFFFF, final XOR 0xFFFF), used for control frames;
//! * [`Crc32`] — IEEE 802.3 (poly 0x04C11DB7 reflected), used for I-frames
//!   whose payloads are large enough that 16 bits of check would leave a
//!   non-negligible undetected-error rate.

/// Table-driven CRC-16/X.25 (the HDLC frame check sequence).
pub struct Crc16Ccitt;

/// Table-driven CRC-32 (IEEE 802.3).
pub struct Crc32;

const fn make_table_16() -> [u16; 256] {
    // Reflected polynomial for 0x1021 is 0x8408.
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u16;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x8408
            } else {
                crc >> 1
            };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn make_table_32() -> [u32; 256] {
    // Reflected polynomial for 0x04C11DB7 is 0xEDB88320.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE_16: [u16; 256] = make_table_16();
static TABLE_32: [u32; 256] = make_table_32();

impl Crc16Ccitt {
    /// Compute the FCS over `data`.
    pub fn checksum(data: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &byte in data {
            let idx = ((crc ^ byte as u16) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE_16[idx];
        }
        crc ^ 0xFFFF
    }

    /// Verify `data` whose trailing two bytes are the little-endian FCS.
    pub fn verify(data_with_fcs: &[u8]) -> bool {
        if data_with_fcs.len() < 2 {
            return false;
        }
        let (data, fcs) = data_with_fcs.split_at(data_with_fcs.len() - 2);
        let expect = u16::from_le_bytes([fcs[0], fcs[1]]);
        Self::checksum(data) == expect
    }

    /// Append the FCS (little-endian) to `data`.
    pub fn append(data: &mut Vec<u8>) {
        let fcs = Self::checksum(data);
        data.extend_from_slice(&fcs.to_le_bytes());
    }
}

impl Crc32 {
    /// Compute the CRC-32 over `data`.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &byte in data {
            let idx = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE_32[idx];
        }
        crc ^ 0xFFFF_FFFF
    }

    /// Verify `data` whose trailing four bytes are the little-endian CRC.
    pub fn verify(data_with_crc: &[u8]) -> bool {
        if data_with_crc.len() < 4 {
            return false;
        }
        let (data, crc) = data_with_crc.split_at(data_with_crc.len() - 4);
        let expect = u32::from_le_bytes([crc[0], crc[1], crc[2], crc[3]]);
        Self::checksum(data) == expect
    }

    /// Append the CRC (little-endian) to `data`.
    pub fn append(data: &mut Vec<u8>) {
        let crc = Self::checksum(data);
        data.extend_from_slice(&crc.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Standard check values: CRC-16/X.25("123456789") = 0x906E,
    // CRC-32/ISO-HDLC("123456789") = 0xCBF43926.
    #[test]
    fn crc16_check_value() {
        assert_eq!(Crc16Ccitt::checksum(b"123456789"), 0x906E);
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc16_append_verify_roundtrip() {
        let mut data = b"hello LAMS".to_vec();
        Crc16Ccitt::append(&mut data);
        assert!(Crc16Ccitt::verify(&data));
    }

    #[test]
    fn crc32_append_verify_roundtrip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7) as u8;
        }
        Crc32::append(&mut data);
        assert!(Crc32::verify(&data));
    }

    #[test]
    fn crc16_detects_single_bit_flip() {
        let mut data = b"payload bytes".to_vec();
        Crc16Ccitt::append(&mut data);
        for i in 0..data.len() * 8 {
            let mut corrupted = data.clone();
            corrupted[i / 8] ^= 0x80 >> (i % 8);
            assert!(!Crc16Ccitt::verify(&corrupted), "missed flip at bit {i}");
        }
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = vec![0xA5; 64];
        Crc32::append(&mut data);
        for i in 0..data.len() * 8 {
            let mut corrupted = data.clone();
            corrupted[i / 8] ^= 0x80 >> (i % 8);
            assert!(!Crc32::verify(&corrupted), "missed flip at bit {i}");
        }
    }

    #[test]
    fn crc16_detects_burst_up_to_16_bits() {
        let mut data = b"burst error detection test".to_vec();
        Crc16Ccitt::append(&mut data);
        // Any burst of length <= 16 bits is detected by a 16-bit CRC.
        for start in 0..(data.len() * 8 - 16) {
            let mut corrupted = data.clone();
            for bit in start..start + 16 {
                corrupted[bit / 8] ^= 0x80 >> (bit % 8);
            }
            assert!(!Crc16Ccitt::verify(&corrupted), "missed burst at {start}");
        }
    }

    #[test]
    fn verify_too_short() {
        assert!(!Crc16Ccitt::verify(&[0x01]));
        assert!(!Crc32::verify(&[0x01, 0x02, 0x03]));
    }

    #[test]
    fn empty_payload() {
        let mut data = Vec::new();
        Crc16Ccitt::append(&mut data);
        assert_eq!(data.len(), 2);
        assert!(Crc16Ccitt::verify(&data));
    }
}
