//! Golden-seed equivalence tests.
//!
//! The values below were captured from the seed-commit event loops
//! (the hand-rolled `scenario.rs` / `duplex.rs` / `relay.rs` drivers)
//! *before* they were re-expressed over the `netsim` engine. The
//! refactored runners must reproduce every number bit-for-bit: same
//! seed, same channel realisation, same protocol decisions, same
//! report.

use harness::{
    run_duplex_lams, run_gbn, run_lams, run_relay_lams, run_sr, RelayConfig, RunReport,
    ScenarioConfig,
};
use sim_core::Duration;

/// The observable fingerprint of one run: if all of these match the
/// golden capture exactly, the engine made identical decisions at
/// identical instants.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    delivered_unique: u64,
    duplicates: u64,
    lost: u64,
    transmissions: u64,
    retransmissions: u64,
    finished_at_ns: u64,
    delay_count: u64,
    e2e_delay_mean_bits: u64,
    holding_mean_bits: u64,
}

fn fp(r: &RunReport) -> Fingerprint {
    Fingerprint {
        delivered_unique: r.delivered_unique,
        duplicates: r.duplicates,
        lost: r.lost,
        transmissions: r.transmissions,
        retransmissions: r.retransmissions,
        finished_at_ns: r.finished_at.as_nanos(),
        delay_count: r.delay.count(),
        e2e_delay_mean_bits: r.e2e_delay.mean().to_bits(),
        holding_mean_bits: r.holding.mean().to_bits(),
    }
}

fn lossy(n: u64, ber: f64) -> ScenarioConfig {
    let mut c = ScenarioConfig::paper_default();
    c.n_packets = n;
    c.data_residual_ber = ber;
    c.ctrl_residual_ber = ber / 10.0;
    c.deadline = Duration::from_secs(120);
    c
}

#[test]
fn golden_lams_point_to_point() {
    let r = run_lams(&lossy(2_000, 1e-5));
    assert_eq!(
        fp(&r),
        Fingerprint {
            delivered_unique: 2000,
            duplicates: 0,
            lost: 0,
            transmissions: 2158,
            retransmissions: 158,
            finished_at_ns: 203344484,
            delay_count: 2000,
            e2e_delay_mean_bits: 4593635418311284060,
            holding_mean_bits: 4584087809177327535,
        }
    );
}

#[test]
fn golden_sr_point_to_point() {
    let r = run_sr(&lossy(2_000, 1e-5));
    assert_eq!(
        fp(&r),
        Fingerprint {
            delivered_unique: 2000,
            duplicates: 0,
            lost: 0,
            transmissions: 2158,
            retransmissions: 158,
            finished_at_ns: 253936686,
            delay_count: 2000,
            e2e_delay_mean_bits: 4594275168424428954,
            holding_mean_bits: 4590275547844339454,
        }
    );
}

#[test]
fn golden_gbn_point_to_point() {
    let r = run_gbn(&lossy(800, 1e-6));
    assert_eq!(
        fp(&r),
        Fingerprint {
            delivered_unique: 800,
            duplicates: 0,
            lost: 0,
            transmissions: 3074,
            retransmissions: 2274,
            finished_at_ns: 258542865,
            delay_count: 800,
            e2e_delay_mean_bits: 4593737800450033514,
            holding_mean_bits: 0,
        }
    );
}

#[test]
fn golden_duplex_lams() {
    let d = run_duplex_lams(&lossy(1_500, 1e-6));
    assert_eq!(
        fp(&d.a_to_b),
        Fingerprint {
            delivered_unique: 1500,
            duplicates: 0,
            lost: 0,
            transmissions: 1518,
            retransmissions: 18,
            finished_at_ns: 138344484,
            delay_count: 1500,
            e2e_delay_mean_bits: 4590402866163810496,
            holding_mean_bits: 4584095192130966747,
        }
    );
    assert_eq!(
        fp(&d.b_to_a),
        Fingerprint {
            delivered_unique: 1500,
            duplicates: 0,
            lost: 0,
            transmissions: 1501,
            retransmissions: 1,
            finished_at_ns: 138344484,
            delay_count: 1500,
            e2e_delay_mean_bits: 4588973297303071113,
            holding_mean_bits: 4584091768337636621,
        }
    );
}

#[test]
fn golden_relay_three_hops() {
    let cfg = RelayConfig {
        hops: 3,
        base: lossy(1_500, 1e-6),
    };
    let r = run_relay_lams(&cfg);
    assert_eq!(
        fp(&r),
        Fingerprint {
            delivered_unique: 1500,
            duplicates: 0,
            lost: 0,
            transmissions: 4533,
            retransmissions: 33,
            finished_at_ns: 168344484,
            delay_count: 1500,
            e2e_delay_mean_bits: 4592467057754480977,
            holding_mean_bits: 4584087421385838388,
        }
    );
}
