//! Perfetto-loadable timeline export for the sharded runtime.
//!
//! The conservative coordinator records one [`SuperstepSpan`] per
//! granted window; this module renders a collection of them as Chrome
//! trace-event JSON (the `traceEvents` array format Perfetto and
//! `chrome://tracing` load natively), tagged with the
//! [`TIMELINE_SCHEMA`] marker so tooling can validate the document.
//!
//! Layout: one *process* (pid) per [`TimelineGroup`] (an experiment
//! run), one *thread* (tid) per shard. Each granted window becomes a
//! `ph:"X"` duration span on its shard's track, and three `ph:"C"`
//! counter series (`events`, `queue_depth`, `grant_horizon_s`) are
//! emitted alongside so event rate, backlog and the grant front are
//! visible as graphs above the tracks.
//!
//! Determinism contract: span/counter *ordering* and every `args`
//! member are pure functions of the simulation (byte-identical across
//! repeated runs at the same shard count); only the `ts`/`dur` members
//! carry wall-clock placement and are determinism-exempt, mirroring the
//! `perf`/`profile` report blocks. An offline replay (no wall clock)
//! uses synthetic placement — see [`timeline_doc`].

use crate::json::Json;

/// Schema marker carried in the document's top-level `"schema"` member.
pub const TIMELINE_SCHEMA: &str = "lams-dlc.timeline/1";

/// One granted window of one shard within a coordinator superstep —
/// the unit of the sharded runtime's wall-clock attribution.
///
/// All fields except `t0_ns`/`busy_ns` are deterministic (identical
/// across repeated runs at the same shard count); the two wall fields
/// are exempt and zero in offline replays.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperstepSpan {
    /// Coordinator round index (0-based).
    pub round: u64,
    /// Shard the window was granted to.
    pub shard: u64,
    /// Granted horizon `G_s` in simulated nanoseconds.
    pub grant_ns: u64,
    /// True when an inbound cut's `C_sender + delay` bound the grant.
    pub cut_bound: bool,
    /// Global id of the binding cut link (0 when `cut_bound` is false).
    pub critical_link: u64,
    /// Events processed in the window (pushes + arrivals, no wakes).
    pub events: u64,
    /// Cross-shard arrivals injected at the start of the window.
    pub inbound: u64,
    /// Frames exported across outbound cut links during the window.
    pub outbound: u64,
    /// Events still pending on the shard queue at window end.
    pub queue_depth: u64,
    /// Window start, wall-clock nanoseconds since the run epoch
    /// (determinism-exempt; 0 in offline replays).
    pub t0_ns: u64,
    /// Busy wall-clock nanoseconds spent inside the window
    /// (determinism-exempt; 0 in offline replays).
    pub busy_ns: u64,
}

/// One Perfetto process worth of spans: an experiment run's supersteps.
#[derive(Clone, Debug, Default)]
pub struct TimelineGroup {
    /// Process label shown in the UI (e.g. `"E18 run 0"`).
    pub label: String,
    /// The run's granted windows, in coordinator emission order.
    pub spans: Vec<SuperstepSpan>,
}

/// Render timeline groups as a Chrome trace-event document.
///
/// When every span carries zero wall timing (an offline `trace-tools
/// timeline` replay), placement is synthesized deterministically — per
/// track, each span starts where the previous one ended and lasts
/// `events + 1` µs — so the document still loads with readable
/// proportions. Live exports place spans at their measured wall offsets
/// (integer microseconds; flooring preserves per-track non-overlap
/// exactly because windows on one shard thread are sequential).
pub fn timeline_doc(groups: &[TimelineGroup]) -> Json {
    let synthetic = groups
        .iter()
        .flat_map(|g| g.spans.iter())
        .all(|s| s.t0_ns == 0 && s.busy_ns == 0);
    let mut events: Vec<Json> = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let pid = (gi + 1) as u64;
        events.push(Json::obj([
            ("name", Json::from("process_name")),
            ("ph", "M".into()),
            ("pid", pid.into()),
            (
                "args",
                Json::obj([("name", Json::from(group.label.as_str()))]),
            ),
        ]));
        let shards = group.spans.iter().map(|s| s.shard + 1).max().unwrap_or(0);
        for shard in 0..shards {
            events.push(Json::obj([
                ("name", Json::from("thread_name")),
                ("ph", "M".into()),
                ("pid", pid.into()),
                ("tid", (shard + 1).into()),
                (
                    "args",
                    Json::obj([("name", Json::from(format!("shard {shard}")))]),
                ),
            ]));
        }
        // Deterministic emission order: (round, shard), regardless of
        // which shard's window reply reached the coordinator first.
        let mut spans: Vec<&SuperstepSpan> = group.spans.iter().collect();
        spans.sort_by_key(|s| (s.round, s.shard));
        let mut cursor = vec![0u64; shards as usize];
        for s in spans {
            let (ts, dur) = if synthetic {
                let dur = s.events + 1;
                let ts = cursor[s.shard as usize];
                cursor[s.shard as usize] = ts + dur;
                (ts, dur)
            } else {
                (s.t0_ns / 1_000, s.busy_ns / 1_000)
            };
            let tid = s.shard + 1;
            events.push(Json::obj([
                ("name", Json::from("superstep")),
                ("ph", "X".into()),
                ("pid", pid.into()),
                ("tid", tid.into()),
                ("ts", ts.into()),
                ("dur", dur.into()),
                (
                    "args",
                    Json::obj([
                        ("round", Json::from(s.round)),
                        ("shard", s.shard.into()),
                        ("grant_ns", s.grant_ns.into()),
                        ("cut_bound", s.cut_bound.into()),
                        ("critical_link", s.critical_link.into()),
                        ("events", s.events.into()),
                        ("inbound", s.inbound.into()),
                        ("outbound", s.outbound.into()),
                        ("queue_depth", s.queue_depth.into()),
                    ]),
                ),
            ]));
            let series = format!("shard{}", s.shard);
            for (name, value) in [
                ("events", Json::from(s.events)),
                ("queue_depth", s.queue_depth.into()),
                ("grant_horizon_s", (s.grant_ns as f64 / 1e9).into()),
            ] {
                events.push(Json::obj([
                    ("name", Json::from(name)),
                    ("ph", "C".into()),
                    ("pid", pid.into()),
                    ("ts", ts.into()),
                    ("args", Json::obj([(series.as_str(), value)])),
                ]));
            }
        }
    }
    Json::obj([
        ("schema", Json::from(TIMELINE_SCHEMA)),
        ("displayTimeUnit", "ms".into()),
        ("traceEvents", Json::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(round: u64, shard: u64, events: u64, wall: bool) -> SuperstepSpan {
        SuperstepSpan {
            round,
            shard,
            grant_ns: (round + 1) * 1_000_000,
            cut_bound: shard == 1,
            critical_link: if shard == 1 { 3 } else { 0 },
            events,
            inbound: shard,
            outbound: 1,
            queue_depth: 2,
            t0_ns: if wall {
                round * 10_000 + shard * 500
            } else {
                0
            },
            busy_ns: if wall { 4_000 } else { 0 },
        }
    }

    fn doc(wall: bool) -> Json {
        timeline_doc(&[TimelineGroup {
            label: "E18 run 0".into(),
            spans: vec![
                span(0, 0, 5, wall),
                span(0, 1, 3, wall),
                span(1, 0, 7, wall),
            ],
        }])
    }

    #[test]
    fn doc_carries_schema_and_tracks() {
        let d = doc(true);
        assert_eq!(
            d.get("schema").and_then(Json::as_str),
            Some(TIMELINE_SCHEMA)
        );
        let events = d.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            names.iter().filter(|n| **n == "process_name").count(),
            1,
            "one process"
        );
        assert_eq!(
            names.iter().filter(|n| **n == "thread_name").count(),
            2,
            "one track per shard"
        );
        assert_eq!(names.iter().filter(|n| **n == "superstep").count(), 3);
        assert_eq!(names.iter().filter(|n| **n == "grant_horizon_s").count(), 3);
    }

    #[test]
    fn spans_do_not_overlap_per_track() {
        for wall in [false, true] {
            let d = doc(wall);
            let events = d.get("traceEvents").and_then(Json::as_arr).unwrap();
            let mut last_end: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
            for e in events {
                if e.get("ph").and_then(Json::as_str) != Some("X") {
                    continue;
                }
                let key = (
                    e.get("pid").and_then(Json::as_u64).unwrap(),
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                );
                let ts = e.get("ts").and_then(Json::as_u64).unwrap();
                let dur = e.get("dur").and_then(Json::as_u64).unwrap();
                if let Some(end) = last_end.get(&key) {
                    assert!(ts >= *end, "wall={wall}: span at {ts} overlaps {end}");
                }
                last_end.insert(key, ts + dur);
            }
        }
    }

    #[test]
    fn deterministic_fields_identical_across_placements() {
        // Strip ts/dur (the only wall-bearing members) and the synthetic
        // and wall documents must agree byte for byte.
        let strip = |d: &Json| {
            let events = d.get("traceEvents").and_then(Json::as_arr).unwrap();
            events
                .iter()
                .map(|e| match e {
                    Json::Obj(members) => Json::Obj(
                        members
                            .iter()
                            .filter(|(k, _)| k != "ts" && k != "dur")
                            .cloned()
                            .collect(),
                    ),
                    other => other.clone(),
                })
                .map(|e| e.render())
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&doc(false)), strip(&doc(true)));
    }
}
